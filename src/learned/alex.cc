#include "learned/alex.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <thread>

#include "common/epoch.h"
#include "common/search.h"
#include "common/timer.h"

namespace pieces {

namespace {
// Tail gaps hold this sentinel so the slot array stays sorted. Stored keys
// must therefore be < 2^64-1 (all generators in this repo guarantee it).
constexpr Key kSentinel = std::numeric_limits<Key>::max();

// A version lock: odd = write-locked. Readers snapshot the version and
// re-validate; writers CAS the version to odd, then bump it on unlock so
// concurrent readers notice the change and restart. (Same protocol as
// traditional/olc_btree.cc.)
class VersionLock {
 public:
  // Returns the current (even) version, or false via *ok when locked.
  uint64_t ReadLock(bool* ok) const {
    uint64_t v = version_.load(std::memory_order_acquire);
    *ok = (v & 1) == 0;
    return v;
  }
  bool Validate(uint64_t v) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_acquire) == v;
  }
  bool Upgrade(uint64_t v) {
    return version_.compare_exchange_strong(v, v + 1,
                                            std::memory_order_acquire);
  }
  bool TryWriteLock() {
    uint64_t v = version_.load(std::memory_order_acquire);
    return (v & 1) == 0 && Upgrade(v);
  }
  void WriteUnlock() { version_.fetch_add(1, std::memory_order_release); }

 private:
  mutable std::atomic<uint64_t> version_{0};
};

// Optimistic readers walk nodes a locked writer may be mutating; the
// version validation discards anything torn, but under the C++ memory
// model the racing loads/stores themselves must be atomic to be defined
// (TSan flags the plain versions). Relaxed atomic_ref keeps both sides
// defined and compiles to ordinary loads/stores on x86-64.
template <typename T>
T RelaxedLoad(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_relaxed);
}

template <typename T>
void RelaxedStore(T& field, T v) {
  std::atomic_ref<T>(field).store(v, std::memory_order_relaxed);
}

// Child-pointer publication needs release/acquire: a reader that wins the
// race to a freshly spliced-in node must see its constructed fields, not
// just a valid pointer.
template <typename T>
T AcquireLoad(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_acquire);
}

template <typename T>
void ReleaseStore(T& field, T v) {
  std::atomic_ref<T>(field).store(v, std::memory_order_release);
}

// ExponentialSearchLowerBound with every slot access relaxed-atomic: the
// gallop runs against an array a lock-holding writer may be shifting. Torn
// values can misdirect the search (the caller discards the result when the
// node version fails to validate) but never break termination or bounds —
// lo/hi move monotonically and stay inside [0, n].
size_t OlcExponentialSearchLowerBound(const Key* data, size_t n, size_t hint,
                                      Key key) {
  if (n == 0) return 0;
  if (hint >= n) hint = n - 1;
  size_t lo;
  size_t hi;
  if (RelaxedLoad(data[hint]) >= key) {
    // Gallop left.
    size_t step = 1;
    hi = hint;
    lo = hint;
    while (lo > 0 && RelaxedLoad(data[lo]) >= key) {
      hi = lo;
      lo = (lo >= step) ? lo - step : 0;
      step *= 2;
    }
    ++hi;  // data[hi-1] >= key, search in [lo, hi).
  } else {
    // Gallop right.
    size_t step = 1;
    lo = hint + 1;
    hi = hint + 1;
    while (hi < n && RelaxedLoad(data[hi]) < key) {
      lo = hi + 1;
      hi = std::min(n, hi + step);
      step *= 2;
    }
  }
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (RelaxedLoad(data[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void AddRetrainStats(IndexStats& s, uint64_t nanos) {
  std::atomic_ref<size_t>(s.retrain_count)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(s.retrain_nanos)
      .fetch_add(nanos, std::memory_order_relaxed);
}

void AddMovedKeys(IndexStats& s, uint64_t n) {
  std::atomic_ref<uint64_t>(s.moved_keys)
      .fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

struct Alex::Node {
  VersionLock lock;
  // Set (under the write lock) when the node has been replaced by an SMO;
  // readers holding a pointer to it restart from the root. The node stays
  // readable until the epoch manager reclaims it.
  std::atomic<bool> obsolete{false};
  const bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct Alex::DataNode : Alex::Node {
  DataNode() : Node(true) {}

  // model / capacity and the three array *buffers* are immutable once the
  // node is published (SMOs replace the whole node); array *contents* are
  // mutated only by the lock holder and read with relaxed atomics.
  LinearModel model;  // key -> slot in [0, capacity).
  std::vector<Key> slots;      // Gap slots hold their right neighbor's key.
  std::vector<Value> values;
  std::vector<uint8_t> occ;    // 1 = slot holds a live pair.
  size_t capacity = 0;
  size_t count = 0;            // lock holder only
  std::atomic<DataNode*> prev{nullptr};
  std::atomic<DataNode*> next{nullptr};

  // First slot with slots[i] >= key, starting the exponential search from
  // the model's prediction. Plain-load version for the write-lock holder.
  size_t LowerBoundSlot(Key key) const {
    size_t hint = model.PredictClamped(key, capacity);
    return ExponentialSearchLowerBound(slots.data(), capacity, hint, key);
  }
  // Relaxed-atomic version for optimistic readers.
  size_t LowerBoundSlotOlc(Key key) const {
    size_t hint = model.PredictClamped(key, capacity);
    return OlcExponentialSearchLowerBound(slots.data(), capacity, hint, key);
  }
};

struct Alex::InnerNode : Alex::Node {
  InnerNode() : Node(false) {}
  LinearModel model;  // key -> child slot; immutable after build.
  std::vector<Node*> children;  // fixed size; slots swapped under the lock
};

struct Alex::PathEntry {
  InnerNode* node;
  uint64_t version;
  size_t slot;
};

// Node has no virtual destructor (keeping nodes vtable-free matters for
// cache behaviour), so deletes always downcast to the concrete type —
// deleting through the base pointer would be undefined behaviour.

Alex::~Alex() { Clear(); }

void Alex::Clear() {
  // Quiescent-only (destruction, BulkLoad): no guard may be active.
  Node* root = root_.load(std::memory_order_acquire);
  if (root == nullptr) return;
  std::vector<Node*> stack{root};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      delete static_cast<DataNode*>(n);
    } else {
      auto* inner = static_cast<InnerNode*>(n);
      // Children can repeat (ALEX shares pointers across slots); only
      // push each distinct child once — repeats are always adjacent.
      Node* last = nullptr;
      for (Node* c : inner->children) {
        if (c != last) stack.push_back(c);
        last = c;
      }
      delete inner;
    }
  }
  root_.store(nullptr, std::memory_order_release);
  size_.store(0, std::memory_order_relaxed);
}

Alex::DataNode* Alex::BuildDataNode(const KeyValue* data,
                                    size_t count) const {
  auto* node = new DataNode();
  node->count = count;
  node->capacity = std::max<size_t>(
      16, static_cast<size_t>(std::ceil(static_cast<double>(count) /
                                        config_.init_density)));
  node->slots.assign(node->capacity, kSentinel);
  node->values.assign(node->capacity, 0);
  node->occ.assign(node->capacity, 0);
  if (count > 0) {
    std::vector<Key> keys(count);
    for (size_t i = 0; i < count; ++i) keys[i] = data[i].key;
    node->model = FitLeastSquares(keys.data(), count);
    if (count > 1) {
      node->model.Expand(static_cast<double>(node->capacity) /
                         static_cast<double>(count));
    }
    // Model-based placement (LSA-gap): each key goes to its predicted slot
    // or the next free one, keeping order.
    size_t next_free = 0;
    for (size_t i = 0; i < count; ++i) {
      size_t pred = node->model.PredictClamped(data[i].key, node->capacity);
      size_t slot = std::max(pred, next_free);
      size_t max_slot = node->capacity - (count - i);
      if (slot > max_slot) slot = max_slot;
      node->slots[slot] = data[i].key;
      node->values[slot] = data[i].value;
      node->occ[slot] = 1;
      next_free = slot + 1;
    }
    // Fill gap slots with their right neighbor's key (sorted invariant).
    Key carry = kSentinel;
    for (size_t i = node->capacity; i-- > 0;) {
      if (node->occ[i]) {
        carry = node->slots[i];
      } else {
        node->slots[i] = carry;
      }
    }
  }
  return node;
}

Alex::DataNode* Alex::CloneForAppend(const DataNode* node) const {
  auto* n2 = new DataNode();
  n2->model = node->model;
  n2->capacity = node->capacity + node->capacity / 2 + 16;
  n2->count = node->count;
  n2->slots.assign(n2->capacity, kSentinel);
  n2->values.assign(n2->capacity, 0);
  n2->occ.assign(n2->capacity, 0);
  std::copy(node->slots.begin(), node->slots.end(), n2->slots.begin());
  std::copy(node->values.begin(), node->values.end(), n2->values.begin());
  std::copy(node->occ.begin(), node->occ.end(), n2->occ.begin());
  // Old tail gaps carried kSentinel already, so the sorted-fill invariant
  // holds across the grown tail without touching anything.
  return n2;
}

Alex::Node* Alex::BuildSubtree(const KeyValue* data, size_t count) {
  if (count <= config_.target_leaf_keys) {
    return BuildDataNode(data, count);
  }
  // Fanout: enough children to bring each near the target size, capped.
  size_t want = count / config_.target_leaf_keys;
  size_t fanout = std::bit_ceil(std::max<size_t>(2, want));
  fanout = std::min(fanout, config_.max_fanout);

  auto* inner = new InnerNode();
  std::vector<Key> keys(count);
  for (size_t i = 0; i < count; ++i) keys[i] = data[i].key;
  inner->model = FitLeastSquares(keys.data(), count);
  inner->model.Expand(static_cast<double>(fanout) /
                      static_cast<double>(count));
  inner->children.resize(fanout);

  size_t begin = 0;
  for (size_t c = 0; c < fanout; ++c) {
    size_t end = begin;
    while (end < count &&
           inner->model.PredictClamped(data[end].key, fanout) == c) {
      ++end;
    }
    inner->children[c] = BuildSubtree(data + begin, end - begin);
    begin = end;
  }
  return inner;
}

void Alex::BulkLoad(std::span<const KeyValue> data) {
  // Single-threaded phase by contract (recovery / initial load).
  Clear();
  update_stats_ = IndexStats{};
  Node* root = BuildSubtree(data.data(), data.size());
  size_.store(data.size(), std::memory_order_relaxed);

  // Link the data-node chain in key order for scans (DFS, left to right).
  DataNode* prev = nullptr;
  std::vector<std::pair<Node*, size_t>> walk{{root, 0}};
  while (!walk.empty()) {
    auto& [n, idx] = walk.back();
    if (n->is_leaf) {
      auto* d = static_cast<DataNode*>(n);
      d->prev.store(prev, std::memory_order_relaxed);
      if (prev != nullptr) prev->next.store(d, std::memory_order_relaxed);
      prev = d;
      walk.pop_back();
      continue;
    }
    auto* inner = static_cast<InnerNode*>(n);
    // Skip repeated pointers (possible only after splits, but be safe).
    while (idx < inner->children.size() &&
           idx > 0 && inner->children[idx] == inner->children[idx - 1]) {
      ++idx;
    }
    if (idx >= inner->children.size()) {
      walk.pop_back();
      continue;
    }
    Node* child = inner->children[idx];
    ++idx;
    walk.push_back({child, 0});
  }
  root_.store(root, std::memory_order_release);
}

Alex::DataNode* Alex::DescendOlc(Key key, std::vector<PathEntry>* path,
                                 uint64_t* leaf_version) const {
  Node* node = root_.load(std::memory_order_acquire);
  if (node == nullptr) return nullptr;
  bool ok = false;
  uint64_t v = node->lock.ReadLock(&ok);
  if (!ok || node->obsolete.load(std::memory_order_acquire)) return nullptr;
  while (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    size_t c = inner->model.PredictClamped(key, inner->children.size());
    Node* child = AcquireLoad(inner->children[c]);
    // The child pointer is only trustworthy if no writer locked the inner
    // node between our ReadLock and now.
    if (!inner->lock.Validate(v)) return nullptr;
    if (path != nullptr) path->push_back({inner, v, c});
    node = child;
    v = node->lock.ReadLock(&ok);
    if (!ok || node->obsolete.load(std::memory_order_acquire)) {
      return nullptr;
    }
  }
  *leaf_version = v;
  return static_cast<DataNode*>(node);
}

bool Alex::Get(Key key, Value* value) const {
  EpochGuard guard;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0 && (attempt & 63) == 0) std::this_thread::yield();
    if (root_.load(std::memory_order_acquire) == nullptr) return false;
    uint64_t v = 0;
    DataNode* node = DescendOlc(key, nullptr, &v);
    if (node == nullptr) continue;
    size_t slot = node->LowerBoundSlotOlc(key);
    while (slot < node->capacity &&
           RelaxedLoad(node->slots[slot]) == key &&
           RelaxedLoad(node->occ[slot]) == 0) {
      ++slot;  // Skip gap slots carrying the key as fill value.
    }
    bool found = false;
    Value out = 0;
    if (slot < node->capacity && RelaxedLoad(node->occ[slot]) != 0 &&
        RelaxedLoad(node->slots[slot]) == key) {
      found = true;
      out = RelaxedLoad(node->values[slot]);
    }
    if (!node->lock.Validate(v)) continue;  // torn read; retry
    if (found) *value = out;
    return found;
  }
}

bool Alex::SmoExpand(DataNode* node, const std::vector<PathEntry>& path,
                     bool append_only) {
  Timer timer;
  DataNode* n2;
  if (append_only) {
    n2 = CloneForAppend(node);
  } else {
    std::vector<KeyValue> pairs;
    pairs.reserve(node->count);
    for (size_t i = 0; i < node->capacity; ++i) {
      if (node->occ[i]) pairs.push_back({node->slots[i], node->values[i]});
    }
    n2 = BuildDataNode(pairs.data(), pairs.size());
  }

  // Lock the structural neighborhood with try-locks only — we already hold
  // a node lock, so waiting here could deadlock against a neighbor's SMO.
  InnerNode* parent = nullptr;
  if (!path.empty()) {
    parent = path.back().node;
    if (!parent->lock.Upgrade(path.back().version)) {
      delete n2;
      node->lock.WriteUnlock();
      return false;
    }
  }
  DataNode* left_nb = node->prev.load(std::memory_order_acquire);
  DataNode* right_nb = node->next.load(std::memory_order_acquire);
  if (left_nb != nullptr && !left_nb->lock.TryWriteLock()) {
    if (parent != nullptr) parent->lock.WriteUnlock();
    delete n2;
    node->lock.WriteUnlock();
    return false;
  }
  if (right_nb != nullptr && !right_nb->lock.TryWriteLock()) {
    if (left_nb != nullptr) left_nb->lock.WriteUnlock();
    if (parent != nullptr) parent->lock.WriteUnlock();
    delete n2;
    node->lock.WriteUnlock();
    return false;
  }

  n2->prev.store(left_nb, std::memory_order_relaxed);
  n2->next.store(right_nb, std::memory_order_relaxed);
  if (parent != nullptr) {
    // Contiguous slot range in the parent pointing at `node`.
    size_t fan = parent->children.size();
    size_t slot = path.back().slot;
    size_t lo = slot;
    while (lo > 0 && parent->children[lo - 1] == node) --lo;
    size_t hi = slot + 1;
    while (hi < fan && parent->children[hi] == node) ++hi;
    for (size_t i = lo; i < hi; ++i) {
      ReleaseStore(parent->children[i], static_cast<Node*>(n2));
    }
    parent->lock.WriteUnlock();
  } else {
    // `node` is the root: we hold its lock and it is not obsolete, so no
    // other SMO can have swapped the root since our descent.
    root_.store(n2, std::memory_order_release);
  }
  if (left_nb != nullptr) {
    left_nb->next.store(n2, std::memory_order_release);
    left_nb->lock.WriteUnlock();
  }
  if (right_nb != nullptr) {
    right_nb->prev.store(n2, std::memory_order_release);
    right_nb->lock.WriteUnlock();
  }
  node->obsolete.store(true, std::memory_order_release);
  node->lock.WriteUnlock();
  EpochManager::Global().Retire(node);
  AddRetrainStats(update_stats_, timer.ElapsedNanos());
  return true;
}

bool Alex::SmoSplit(DataNode* node, const std::vector<PathEntry>& path) {
  Timer timer;
  InnerNode* parent = nullptr;
  if (!path.empty()) {
    parent = path.back().node;
    if (!parent->lock.Upgrade(path.back().version)) {
      node->lock.WriteUnlock();
      return false;
    }
  }
  DataNode* left_nb = node->prev.load(std::memory_order_acquire);
  DataNode* right_nb = node->next.load(std::memory_order_acquire);
  if (left_nb != nullptr && !left_nb->lock.TryWriteLock()) {
    if (parent != nullptr) parent->lock.WriteUnlock();
    node->lock.WriteUnlock();
    return false;
  }
  if (right_nb != nullptr && !right_nb->lock.TryWriteLock()) {
    if (left_nb != nullptr) left_nb->lock.WriteUnlock();
    if (parent != nullptr) parent->lock.WriteUnlock();
    node->lock.WriteUnlock();
    return false;
  }
  // Every lock is held — from here the split cannot fail.

  std::vector<KeyValue> pairs;
  pairs.reserve(node->count);
  for (size_t i = 0; i < node->capacity; ++i) {
    if (node->occ[i]) pairs.push_back({node->slots[i], node->values[i]});
  }

  DataNode* left = nullptr;
  DataNode* right = nullptr;
  // Chain-splice the replacements between the (locked) old neighbors. The
  // neighbors' own next/prev pointers are swung after publication below.
  auto splice_chain = [&]() {
    left->prev.store(left_nb, std::memory_order_relaxed);
    left->next.store(right, std::memory_order_relaxed);
    right->prev.store(left, std::memory_order_relaxed);
    right->next.store(right_nb, std::memory_order_relaxed);
  };
  auto build_two_way = [&]() -> InnerNode* {
    // Grow the tree locally with a 2-way inner node (this asymmetry —
    // deepening only hard regions — is ALEX's ATS structure).
    auto* inner = new InnerNode();
    std::vector<Key> keys(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) keys[i] = pairs[i].key;
    inner->model = FitLeastSquares(keys.data(), keys.size());
    inner->model.Expand(2.0 / static_cast<double>(pairs.size()));
    inner->children.resize(2);
    size_t mid = 0;
    while (mid < pairs.size() &&
           inner->model.PredictClamped(pairs[mid].key, 2) == 0) {
      ++mid;
    }
    left = BuildDataNode(pairs.data(), mid);
    right = BuildDataNode(pairs.data() + mid, pairs.size() - mid);
    inner->children[0] = left;
    inner->children[1] = right;
    return inner;
  };

  if (parent == nullptr) {
    InnerNode* inner = build_two_way();
    splice_chain();
    root_.store(inner, std::memory_order_release);
  } else {
    size_t fan = parent->children.size();
    size_t slot = path.back().slot;
    size_t lo = slot;
    while (lo > 0 && parent->children[lo - 1] == node) --lo;
    size_t hi = slot + 1;
    while (hi < fan && parent->children[hi] == node) ++hi;
    if (hi - lo >= 2) {
      // Split sideways at a parent slot boundary: slots [lo, c) -> left,
      // [c, hi) -> right. Partition with the parent's own routing so
      // descent and the split agree exactly (no floating-point boundary
      // inversion).
      size_t c = (lo + hi) / 2;
      size_t mid = 0;
      while (mid < pairs.size() &&
             parent->model.PredictClamped(pairs[mid].key, fan) < c) {
        ++mid;
      }
      left = BuildDataNode(pairs.data(), mid);
      right = BuildDataNode(pairs.data() + mid, pairs.size() - mid);
      splice_chain();
      for (size_t i = lo; i < c; ++i) {
        ReleaseStore(parent->children[i], static_cast<Node*>(left));
      }
      for (size_t i = c; i < hi; ++i) {
        ReleaseStore(parent->children[i], static_cast<Node*>(right));
      }
    } else {
      InnerNode* inner = build_two_way();
      splice_chain();
      ReleaseStore(parent->children[slot], static_cast<Node*>(inner));
    }
    parent->lock.WriteUnlock();
  }
  if (left_nb != nullptr) {
    left_nb->next.store(left, std::memory_order_release);
    left_nb->lock.WriteUnlock();
  }
  if (right_nb != nullptr) {
    right_nb->prev.store(right, std::memory_order_release);
    right_nb->lock.WriteUnlock();
  }
  node->obsolete.store(true, std::memory_order_release);
  node->lock.WriteUnlock();
  EpochManager::Global().Retire(node);
  AddRetrainStats(update_stats_, timer.ElapsedNanos());
  return true;
}

bool Alex::Insert(Key key, Value value) {
  EpochGuard guard;
  std::vector<PathEntry> path;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0 && (attempt & 63) == 0) std::this_thread::yield();
    path.clear();
    if (root_.load(std::memory_order_acquire) == nullptr) {
      KeyValue kv{key, value};
      DataNode* leaf = BuildDataNode(&kv, 1);
      Node* expected = nullptr;
      if (root_.compare_exchange_strong(expected, leaf,
                                        std::memory_order_release,
                                        std::memory_order_acquire)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      delete leaf;  // lost the race; another root exists now
      continue;
    }
    uint64_t v = 0;
    DataNode* node = DescendOlc(key, &path, &v);
    if (node == nullptr) continue;
    if (!node->lock.Upgrade(v)) continue;
    // --- `node` is write-locked and cannot be obsolete (marking it bumps
    // the version, which would have failed the Upgrade). Plain loads are
    // fine for the lock holder; every store must be a relaxed atomic
    // because optimistic readers race with it.

    size_t slot = node->LowerBoundSlot(key);
    while (slot < node->capacity && node->slots[slot] == key &&
           !node->occ[slot]) {
      ++slot;
    }
    if (slot < node->capacity && node->occ[slot] &&
        node->slots[slot] == key) {
      RelaxedStore(node->values[slot], value);
      node->lock.WriteUnlock();
      return true;
    }

    if (node->count == node->capacity) {
      // No gap anywhere: retrain (publish a replacement), then retry.
      if (node->count < config_.max_data_node_keys) {
        SmoExpand(node, path, /*append_only=*/false);
      } else {
        SmoSplit(node, path);
      }
      continue;  // the SMO released every lock, success or not
    }

    if (slot == node->capacity) {
      // Append beyond the node's max key: take the first tail gap, or
      // grow the tail (no model retrain) when it is exhausted. Without
      // this, sequential workloads shift an ever-growing dense suffix on
      // every insert.
      size_t tail = node->LowerBoundSlot(kSentinel);
      if (tail == node->capacity) {
        if (node->count >= config_.max_data_node_keys) {
          SmoSplit(node, path);
        } else {
          SmoExpand(node, path, /*append_only=*/true);
        }
        continue;
      }
      RelaxedStore(node->slots[tail], key);
      RelaxedStore(node->values[tail], value);
      RelaxedStore(node->occ[tail], uint8_t{1});
      ++node->count;
      size_.fetch_add(1, std::memory_order_relaxed);
      if (static_cast<double>(node->count) >=
          config_.max_density * static_cast<double>(node->capacity)) {
        // Preemptive retrain; if its try-locks lose a race the density
        // stays slightly over the trigger and the next insert retries it.
        if (node->count < config_.max_data_node_keys) {
          SmoExpand(node, path, /*append_only=*/false);
        } else {
          SmoSplit(node, path);
        }
        return true;  // the insert itself already succeeded
      }
      node->lock.WriteUnlock();
      return true;
    }

    // `slot` is the first position whose (fill) key is > key; insert just
    // before it, shifting at most to the nearest gap.
    if (slot > 0 && !node->occ[slot - 1]) {
      // A gap sits exactly where the key belongs.
      size_t g = slot - 1;
      RelaxedStore(node->slots[g], key);
      RelaxedStore(node->values[g], value);
      RelaxedStore(node->occ[g], uint8_t{1});
      for (size_t j = g; j-- > 0 && !node->occ[j];) {
        RelaxedStore(node->slots[j], key);
      }
    } else {
      // Locate the nearest gap on each side.
      size_t right_gap = slot;
      while (right_gap < node->capacity && node->occ[right_gap]) ++right_gap;
      // Scan left no further than the right gap's distance: a farther
      // left gap would never be chosen, and an unbounded scan makes dense
      // append runs quadratic.
      size_t left_gap = kSentinel;
      if (slot > 0) {
        size_t max_steps = right_gap >= node->capacity
                               ? slot
                               : right_gap - slot + 1;
        size_t j = slot - 1;
        for (size_t step = 0; step <= max_steps; ++step) {
          if (!node->occ[j]) {
            left_gap = j;
            break;
          }
          if (j == 0) break;
          --j;
        }
      }
      bool use_right;
      if (right_gap >= node->capacity) {
        use_right = false;
      } else if (left_gap == kSentinel) {
        use_right = true;
      } else {
        use_right = (right_gap - slot) <= (slot - left_gap);
      }
      if (use_right) {
        // Shift [slot, right_gap) one right; insert at slot.
        for (size_t i = right_gap; i > slot; --i) {
          RelaxedStore(node->slots[i], node->slots[i - 1]);
          RelaxedStore(node->values[i], node->values[i - 1]);
          RelaxedStore(node->occ[i], node->occ[i - 1]);
        }
        RelaxedStore(node->slots[slot], key);
        RelaxedStore(node->values[slot], value);
        RelaxedStore(node->occ[slot], uint8_t{1});
        AddMovedKeys(update_stats_, right_gap - slot);
      } else {
        // Shift (left_gap, slot) one left; insert at slot-1.
        for (size_t i = left_gap; i + 1 < slot; ++i) {
          RelaxedStore(node->slots[i], node->slots[i + 1]);
          RelaxedStore(node->values[i], node->values[i + 1]);
          RelaxedStore(node->occ[i], node->occ[i + 1]);
        }
        RelaxedStore(node->slots[slot - 1], key);
        RelaxedStore(node->values[slot - 1], value);
        RelaxedStore(node->occ[slot - 1], uint8_t{1});
        AddMovedKeys(update_stats_, slot - 1 - left_gap);
        // Gap fill slots left of left_gap keep their invariant because the
        // key now at left_gap equals the old key at left_gap + 1 — except
        // when left_gap had unoccupied neighbors, whose fill must follow.
        for (size_t j = left_gap; j-- > 0 && !node->occ[j];) {
          RelaxedStore(node->slots[j], node->slots[left_gap]);
        }
      }
    }
    ++node->count;
    size_.fetch_add(1, std::memory_order_relaxed);

    if (static_cast<double>(node->count) >=
        config_.max_density * static_cast<double>(node->capacity)) {
      if (node->count < config_.max_data_node_keys) {
        SmoExpand(node, path, /*append_only=*/false);
      } else {
        SmoSplit(node, path);
      }
      return true;
    }
    node->lock.WriteUnlock();
    return true;
  }
}

size_t Alex::Scan(Key from, size_t count, std::vector<KeyValue>* out) const {
  if (count == 0) return 0;
  EpochGuard guard;
  size_t copied = 0;
  std::vector<KeyValue> staged;  // emitted only after version validation
  int attempt = 0;
  while (copied < count) {
    if (++attempt > 1 && (attempt & 63) == 0) std::this_thread::yield();
    if (root_.load(std::memory_order_acquire) == nullptr) break;
    uint64_t v = 0;
    DataNode* node = DescendOlc(from, nullptr, &v);
    if (node == nullptr) continue;
    bool redescend = false;
    bool first = true;
    while (node != nullptr && copied < count) {
      staged.clear();
      size_t cap = node->capacity;
      size_t slot = (first && cap > 0) ? node->LowerBoundSlotOlc(from) : 0;
      for (; slot < cap && staged.size() < count - copied; ++slot) {
        if (RelaxedLoad(node->occ[slot]) != 0) {
          Key k = RelaxedLoad(node->slots[slot]);
          if (k >= from) {
            staged.push_back({k, RelaxedLoad(node->values[slot])});
          }
        }
      }
      DataNode* next = node->next.load(std::memory_order_acquire);
      if (!node->lock.Validate(v)) {
        redescend = true;  // torn read; resume the descent from `from`
        break;
      }
      out->insert(out->end(), staged.begin(), staged.end());
      copied += staged.size();
      // Keys are unique, so the key after the last emitted one is the
      // exact resume point if a later node forces a re-descent.
      if (!staged.empty()) from = staged.back().key + 1;
      first = false;
      if (next == nullptr) break;
      bool ok = false;
      v = next->lock.ReadLock(&ok);
      if (!ok || next->obsolete.load(std::memory_order_acquire)) {
        redescend = true;
        break;
      }
      node = next;
    }
    if (!redescend) break;
  }
  return copied;
}

// The size/stats accessors keep the quiescent contract (bench reporting
// between phases, conformance checks after a run) — they walk the tree
// with plain loads and must not race concurrent writers.
size_t Alex::IndexSizeBytes() const {
  // Inner structure + per-node models/bookkeeping. The gapped arrays hold
  // the data itself (ALEX is its own storage), so — like the paper's Table
  // III — they are charged to data, not to the index structure.
  size_t bytes = 0;
  Node* root = root_.load(std::memory_order_acquire);
  if (root == nullptr) return 0;
  std::vector<const Node*> stack{root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      bytes += sizeof(DataNode);
    } else {
      const auto* inner = static_cast<const InnerNode*>(n);
      bytes += sizeof(InnerNode) + inner->children.size() * sizeof(Node*);
      const Node* last = nullptr;
      for (const Node* c : inner->children) {
        if (c != last) stack.push_back(c);
        last = c;
      }
    }
  }
  return bytes;
}

size_t Alex::TotalSizeBytes() const {
  size_t bytes = IndexSizeBytes();
  Node* root = root_.load(std::memory_order_acquire);
  if (root == nullptr) return bytes;
  std::vector<const Node*> stack{root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      const auto* d = static_cast<const DataNode*>(n);
      bytes += d->capacity * (sizeof(Key) + sizeof(Value) + 1);
    } else {
      const auto* inner = static_cast<const InnerNode*>(n);
      const Node* last = nullptr;
      for (const Node* c : inner->children) {
        if (c != last) stack.push_back(c);
        last = c;
      }
    }
  }
  return bytes;
}

IndexStats Alex::Stats() const {
  IndexStats s = update_stats_;
  Node* root = root_.load(std::memory_order_acquire);
  if (root == nullptr) return s;
  size_t leaves = 0;
  size_t inners = 0;
  uint64_t depth_sum = 0;
  std::vector<std::pair<const Node*, size_t>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [n, depth] = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      ++leaves;
      depth_sum += depth;
    } else {
      ++inners;
      const auto* inner = static_cast<const InnerNode*>(n);
      const Node* last = nullptr;
      for (const Node* c : inner->children) {
        if (c != last) stack.push_back({c, depth + 1});
        last = c;
      }
    }
  }
  s.leaf_count = leaves;
  s.inner_count = inners;
  s.avg_depth = leaves == 0 ? 0
                            : static_cast<double>(depth_sum) /
                                  static_cast<double>(leaves);
  return s;
}

}  // namespace pieces
