#include "learned/fiting_tree.h"

#include <algorithm>
#include <cassert>

#include "common/search.h"
#include "common/timer.h"
#include "pla/optimal_pla.h"

namespace pieces {

FitingTree::FitingTree(InsertMode mode, size_t eps, size_t reserve)
    : mode_(mode), eps_(eps), reserve_(reserve) {}

size_t FitingTree::Leaf::SlotHint(Key key) const {
  size_t count = Count();
  if (count == 0) return end;
  // Model hint (trained layout), corrected for any head-ward drift.
  double rel = model.slope * (static_cast<double>(key) -
                              static_cast<double>(first_key)) +
               model.intercept;
  size_t hint;
  if (!(rel > 0)) {
    hint = 0;
  } else if (rel >= static_cast<double>(count)) {
    hint = count - 1;
  } else {
    hint = static_cast<size_t>(rel);
  }
  // Translate from trained offset to the current occupied range.
  return begin + std::min(hint, count - 1);
}

size_t FitingTree::Leaf::LowerBoundSlot(Key key) const {
  size_t count = Count();
  if (count == 0) return end;
  // Exponential search outward from the model hint — robust to the error
  // creep inserts introduce.
  size_t slot_hint = SlotHint(key);
  size_t pos = ExponentialSearchLowerBound(keys.data() + begin, count,
                                           slot_hint - begin, key);
  return begin + pos;
}

size_t FitingTree::RouteToLeaf(Key key) const {
  Key found_key;
  Value idx;
  if (inner_.FindLessOrEqual(key, &found_key, &idx)) {
    return static_cast<size_t>(idx);
  }
  return head_;  // Key below every segment start: leftmost leaf.
}

std::unique_ptr<FitingTree::Leaf> FitingTree::MakeLeaf(
    const KeyValue* data, size_t count, double slope,
    double intercept) const {
  auto leaf = std::make_unique<Leaf>();
  size_t head_gap = mode_ == InsertMode::kInplace ? reserve_ : 0;
  size_t tail_gap = mode_ == InsertMode::kInplace ? reserve_ : 0;
  size_t capacity = count + head_gap + tail_gap;
  leaf->keys.resize(capacity);
  leaf->values.resize(capacity);
  leaf->begin = head_gap;
  leaf->end = head_gap + count;
  leaf->begin0 = head_gap;
  for (size_t i = 0; i < count; ++i) {
    leaf->keys[head_gap + i] = data[i].key;
    leaf->values[head_gap + i] = data[i].value;
  }
  leaf->model.slope = slope;
  leaf->model.intercept = intercept;
  leaf->first_key = count > 0 ? data[0].key : 0;
  if (mode_ == InsertMode::kBuffer) leaf->buffer.reserve(reserve_);
  return leaf;
}

void FitingTree::BulkLoad(std::span<const KeyValue> data) {
  leaves_.clear();
  inner_.BulkLoad({});
  head_ = kNpos;
  size_ = data.size();
  update_stats_ = IndexStats{};
  if (data.empty()) return;

  std::vector<Key> keys;
  keys.reserve(data.size());
  for (const KeyValue& kv : data) keys.push_back(kv.key);
  PlaResult pla = BuildOptimalPla(keys.data(), keys.size(), eps_);
  update_stats_.max_error = pla.max_error;
  update_stats_.mean_error = pla.mean_error;

  std::vector<KeyValue> inner_entries;
  inner_entries.reserve(pla.segments.size());
  for (const Segment& seg : pla.segments) {
    auto leaf = MakeLeaf(data.data() + seg.base_rank, seg.count, seg.slope,
                         seg.intercept);
    size_t idx = leaves_.size();
    if (idx > 0) leaves_[idx - 1]->next = idx;
    inner_entries.push_back({seg.first_key, static_cast<Value>(idx)});
    leaves_.push_back(std::move(leaf));
  }
  head_ = 0;
  inner_.BulkLoad(inner_entries);
}

bool FitingTree::GetFromLeaf(const Leaf& leaf, Key key, Value* value) const {
  if (mode_ == InsertMode::kBuffer && !leaf.buffer.empty()) {
    auto it = std::lower_bound(
        leaf.buffer.begin(), leaf.buffer.end(), key,
        [](const KeyValue& kv, Key k) { return kv.key < k; });
    if (it != leaf.buffer.end() && it->key == key) {
      *value = it->value;
      return true;
    }
  }
  size_t slot = leaf.LowerBoundSlot(key);
  if (slot < leaf.end && leaf.keys[slot] == key) {
    *value = leaf.values[slot];
    return true;
  }
  return false;
}

bool FitingTree::Get(Key key, Value* value) const {
  if (head_ == kNpos) return false;
  return GetFromLeaf(*leaves_[RouteToLeaf(key)], key, value);
}

size_t FitingTree::GetBatch(std::span<const Key> keys, Value* values,
                            bool* found) const {
  if (head_ == kNpos) {
    std::fill(found, found + keys.size(), false);
    return 0;
  }
  // Stage 1 routes through the inner B+Tree (hot) and prefetches around
  // each leaf's model hint — the exact lines the exponential search probes
  // first — plus the side buffer in kBuffer mode. Stage 2 re-runs the
  // single-key leaf lookup, which is identical to Get by construction.
  constexpr size_t kTile = 16;
  const Leaf* tile_leaf[kTile];
  size_t hits = 0;
  for (size_t base = 0; base < keys.size(); base += kTile) {
    size_t m = std::min(kTile, keys.size() - base);
    for (size_t j = 0; j < m; ++j) {
      const Leaf& leaf = *leaves_[RouteToLeaf(keys[base + j])];
      tile_leaf[j] = &leaf;
      if (leaf.Count() > 0) {
        size_t hint = leaf.SlotHint(keys[base + j]);
        constexpr size_t kReach = 16;  // Covers the first gallop steps.
        size_t lo = hint > leaf.begin + kReach ? hint - kReach : leaf.begin;
        size_t hi = std::min(leaf.end, hint + kReach);
        PrefetchSearchWindow(leaf.keys.data(), lo, hi);
      }
      if (mode_ == InsertMode::kBuffer && !leaf.buffer.empty()) {
        __builtin_prefetch(leaf.buffer.data());
      }
    }
    for (size_t j = 0; j < m; ++j) {
      bool ok = GetFromLeaf(*tile_leaf[j], keys[base + j], &values[base + j]);
      found[base + j] = ok;
      hits += ok ? 1 : 0;
    }
  }
  return hits;
}

void FitingTree::RetrainLeaf(size_t idx, std::vector<KeyValue> data) {
  Timer timer;
  size_t old_next = leaves_[idx]->next;

  std::vector<Key> keys;
  keys.reserve(data.size());
  for (const KeyValue& kv : data) keys.push_back(kv.key);
  PlaResult pla = BuildOptimalPla(keys.data(), keys.size(), eps_);

  size_t prev_slot = kNpos;
  for (size_t s = 0; s < pla.segments.size(); ++s) {
    const Segment& seg = pla.segments[s];
    auto leaf = MakeLeaf(data.data() + seg.base_rank, seg.count, seg.slope,
                         seg.intercept);
    size_t slot;
    if (s == 0) {
      slot = idx;  // Reuse the replaced leaf's position.
      leaves_[idx] = std::move(leaf);
    } else {
      slot = leaves_.size();
      leaves_.push_back(std::move(leaf));
      inner_.Insert(seg.first_key, static_cast<Value>(slot));
    }
    if (prev_slot != kNpos) leaves_[prev_slot]->next = slot;
    prev_slot = slot;
  }
  // The last new leaf resumes the old chain.
  leaves_[prev_slot]->next = old_next;

  ++update_stats_.retrain_count;
  update_stats_.retrain_nanos += timer.ElapsedNanos();
}

bool FitingTree::Insert(Key key, Value value) {
  if (head_ == kNpos) {
    BulkLoad(std::vector<KeyValue>{{key, value}});
    return true;
  }
  size_t idx = RouteToLeaf(key);
  Leaf& leaf = *leaves_[idx];

  if (mode_ == InsertMode::kBuffer) {
    // Update-in-place if the key already exists in the main segment.
    size_t slot = leaf.LowerBoundSlot(key);
    if (slot < leaf.end && leaf.keys[slot] == key) {
      leaf.values[slot] = value;
      return true;
    }
    auto it = std::lower_bound(
        leaf.buffer.begin(), leaf.buffer.end(), key,
        [](const KeyValue& kv, Key k) { return kv.key < k; });
    if (it != leaf.buffer.end() && it->key == key) {
      it->value = value;
      return true;
    }
    update_stats_.moved_keys +=
        static_cast<uint64_t>(leaf.buffer.end() - it);
    leaf.buffer.insert(it, {key, value});
    ++size_;
    if (leaf.buffer.size() >= reserve_) {
      // Merge buffer + main, retrain.
      std::vector<KeyValue> merged;
      merged.reserve(leaf.Count() + leaf.buffer.size());
      size_t a = leaf.begin;
      size_t b = 0;
      while (a < leaf.end && b < leaf.buffer.size()) {
        if (leaf.keys[a] < leaf.buffer[b].key) {
          merged.push_back({leaf.keys[a], leaf.values[a]});
          ++a;
        } else {
          merged.push_back(leaf.buffer[b]);
          ++b;
        }
      }
      for (; a < leaf.end; ++a) merged.push_back({leaf.keys[a], leaf.values[a]});
      for (; b < leaf.buffer.size(); ++b) merged.push_back(leaf.buffer[b]);
      RetrainLeaf(idx, std::move(merged));
    }
    return true;
  }

  // Inplace mode.
  size_t slot = leaf.LowerBoundSlot(key);
  if (slot < leaf.end && leaf.keys[slot] == key) {
    leaf.values[slot] = value;
    return true;
  }
  size_t left_len = slot - leaf.begin;
  size_t right_len = leaf.end - slot;
  bool can_left = leaf.begin > 0;
  bool can_right = leaf.end < leaf.keys.size();
  if ((can_left && left_len <= right_len) || (can_left && !can_right)) {
    // Shift [begin, slot) one to the left; the new key lands at slot-1.
    for (size_t i = leaf.begin; i < slot; ++i) {
      leaf.keys[i - 1] = leaf.keys[i];
      leaf.values[i - 1] = leaf.values[i];
    }
    --leaf.begin;
    leaf.keys[slot - 1] = key;
    leaf.values[slot - 1] = value;
    update_stats_.moved_keys += left_len;
    ++size_;
  } else if (can_right) {
    // Shift [slot, end) one to the right; the new key lands at slot.
    for (size_t i = leaf.end; i > slot; --i) {
      leaf.keys[i] = leaf.keys[i - 1];
      leaf.values[i] = leaf.values[i - 1];
    }
    ++leaf.end;
    leaf.keys[slot] = key;
    leaf.values[slot] = value;
    update_stats_.moved_keys += right_len;
    ++size_;
  } else {
    // Both reserved areas exhausted: retrain this leaf with the new key.
    std::vector<KeyValue> merged;
    merged.reserve(leaf.Count() + 1);
    for (size_t i = leaf.begin; i < leaf.end; ++i) {
      if (i == slot) merged.push_back({key, value});
      merged.push_back({leaf.keys[i], leaf.values[i]});
    }
    if (slot == leaf.end) merged.push_back({key, value});
    RetrainLeaf(idx, std::move(merged));
    ++size_;
  }
  // Track model drift so Stats reflects post-insert error behaviour.
  return true;
}

size_t FitingTree::Scan(Key from, size_t count,
                        std::vector<KeyValue>* out) const {
  if (head_ == kNpos || count == 0) return 0;
  size_t idx = RouteToLeaf(from);
  size_t copied = 0;
  while (idx != kNpos && copied < count) {
    const Leaf& leaf = *leaves_[idx];
    // Merge the leaf's main run with its buffer on the fly.
    size_t a = leaf.LowerBoundSlot(from);
    auto bit = std::lower_bound(
        leaf.buffer.begin(), leaf.buffer.end(), from,
        [](const KeyValue& kv, Key k) { return kv.key < k; });
    while (copied < count &&
           (a < leaf.end || bit != leaf.buffer.end())) {
      bool take_main =
          bit == leaf.buffer.end() ||
          (a < leaf.end && leaf.keys[a] <= bit->key);
      if (take_main) {
        out->push_back({leaf.keys[a], leaf.values[a]});
        ++a;
      } else {
        out->push_back(*bit);
        ++bit;
      }
      ++copied;
    }
    idx = leaf.next;
    from = 0;
  }
  return copied;
}

size_t FitingTree::IndexSizeBytes() const {
  // Inner B+Tree + per-leaf model metadata; the sorted key/value arrays
  // are the data, not the index (Table III convention).
  return inner_.IndexSizeBytes() + leaves_.size() * sizeof(Leaf);
}

size_t FitingTree::TotalSizeBytes() const {
  size_t bytes = IndexSizeBytes();
  for (const auto& leaf : leaves_) {
    bytes += leaf->keys.capacity() * sizeof(Key) +
             leaf->values.capacity() * sizeof(Value) +
             leaf->buffer.capacity() * sizeof(KeyValue);
  }
  return bytes;
}

IndexStats FitingTree::Stats() const {
  IndexStats s = update_stats_;
  s.leaf_count = leaves_.size();
  IndexStats inner_stats = inner_.Stats();
  s.inner_count = inner_stats.inner_count + inner_stats.leaf_count;
  s.avg_depth = inner_stats.avg_depth + 1;
  return s;
}

}  // namespace pieces
