#include "learned/fiting_tree.h"

#include <algorithm>
#include <cassert>

#include "common/epoch.h"
#include "common/search.h"
#include "common/timer.h"
#include "pla/optimal_pla.h"

namespace pieces {

namespace {

std::vector<KeyValue>::const_iterator BufferLowerBound(
    const std::vector<KeyValue>& buffer, Key key) {
  return std::lower_bound(
      buffer.begin(), buffer.end(), key,
      [](const KeyValue& kv, Key k) { return kv.key < k; });
}

}  // namespace

// The product of BuildRetrainPlan: replacement leaves plus a full
// replacement Directory wired to use them. Until InstallPlan releases
// them, the plan owns the new objects, so an aborted publish cleans up by
// plain destruction (the replacement Directory never owns Leaf objects —
// those are shared across directory versions and retired individually).
struct FitingTree::Plan : PreparedRetrain {
  size_t slot = kNpos;
  uint64_t dir_version = 0;
  uint64_t leaf_version = 0;
  // The merged (main + buffer, deduped) content the model was trained
  // on; InstallPlan diffs the live leaf against it to replay racing
  // writes.
  std::vector<KeyValue> snapshot;
  std::vector<std::unique_ptr<Leaf>> new_leaves;
  std::unique_ptr<Directory> replacement;
  uint64_t train_nanos = 0;
};

FitingTree::FitingTree(InsertMode mode, size_t eps, size_t reserve)
    : mode_(mode), eps_(eps), reserve_(std::max<size_t>(1, reserve)) {
  dir_.store(new Directory(), std::memory_order_release);
}

FitingTree::~FitingTree() {
  Directory* d = dir_.load(std::memory_order_acquire);
  for (Leaf* leaf : d->leaves) delete leaf;
  delete d;
}

size_t FitingTree::Leaf::SlotHint(Key key) const {
  size_t count = Count();
  if (count == 0) return end;
  // Model hint (trained layout), corrected for any head-ward drift.
  double rel = model.slope * (static_cast<double>(key) -
                              static_cast<double>(first_key)) +
               model.intercept;
  size_t hint;
  if (!(rel > 0)) {
    hint = 0;
  } else if (rel >= static_cast<double>(count)) {
    hint = count - 1;
  } else {
    hint = static_cast<size_t>(rel);
  }
  // Translate from trained offset to the current occupied range.
  return begin + std::min(hint, count - 1);
}

size_t FitingTree::Leaf::LowerBoundSlot(Key key) const {
  size_t count = Count();
  if (count == 0) return end;
  // Exponential search outward from the model hint — robust to the error
  // creep inserts introduce.
  size_t slot_hint = SlotHint(key);
  size_t pos = ExponentialSearchLowerBound(keys.data() + begin, count,
                                           slot_hint - begin, key);
  return begin + pos;
}

size_t FitingTree::RouteToLeaf(const Directory& d, Key key) const {
  Key found_key;
  Value idx;
  if (d.inner.FindLessOrEqual(key, &found_key, &idx)) {
    return static_cast<size_t>(idx);
  }
  return d.head;  // Key below every segment start: leftmost leaf.
}

std::unique_ptr<FitingTree::Leaf> FitingTree::MakeLeaf(
    const KeyValue* data, size_t count, double slope,
    double intercept) const {
  auto leaf = std::make_unique<Leaf>();
  size_t head_gap = mode_ == InsertMode::kInplace ? reserve_ : 0;
  size_t tail_gap = mode_ == InsertMode::kInplace ? reserve_ : 0;
  size_t capacity = count + head_gap + tail_gap;
  leaf->keys.resize(capacity);
  leaf->values.resize(capacity);
  leaf->begin = head_gap;
  leaf->end = head_gap + count;
  leaf->begin0 = head_gap;
  for (size_t i = 0; i < count; ++i) {
    leaf->keys[head_gap + i] = data[i].key;
    leaf->values[head_gap + i] = data[i].value;
  }
  leaf->model.slope = slope;
  leaf->model.intercept = intercept;
  leaf->first_key = count > 0 ? data[0].key : 0;
  if (mode_ == InsertMode::kBuffer) leaf->buffer.reserve(reserve_);
  return leaf;
}

void FitingTree::BulkLoad(std::span<const KeyValue> data) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  BulkLoadLocked(data);
}

void FitingTree::BulkLoadLocked(std::span<const KeyValue> data) {
  auto nd = std::make_unique<Directory>();
  size_ = data.size();
  built_max_error_ = 0;
  built_mean_error_ = 0;
  retrain_count_.store(0, std::memory_order_relaxed);
  retrain_nanos_.store(0, std::memory_order_relaxed);
  moved_keys_.store(0, std::memory_order_relaxed);

  if (!data.empty()) {
    std::vector<Key> keys;
    keys.reserve(data.size());
    for (const KeyValue& kv : data) keys.push_back(kv.key);
    PlaResult pla = BuildOptimalPla(keys.data(), keys.size(), eps_);
    built_max_error_ = pla.max_error;
    built_mean_error_ = pla.mean_error;

    std::vector<KeyValue> inner_entries;
    inner_entries.reserve(pla.segments.size());
    for (const Segment& seg : pla.segments) {
      auto leaf = MakeLeaf(data.data() + seg.base_rank, seg.count,
                           seg.slope, seg.intercept);
      size_t idx = nd->leaves.size();
      if (idx > 0) nd->leaves[idx - 1]->next = idx;
      inner_entries.push_back({seg.first_key, static_cast<Value>(idx)});
      nd->leaves.push_back(leaf.release());
    }
    nd->head = 0;
    nd->inner.BulkLoad(inner_entries);
  }

  Directory* old = dir_.load(std::memory_order_relaxed);
  dir_.store(nd.release(), std::memory_order_release);
  dir_version_.fetch_add(1, std::memory_order_relaxed);
  // Readers from a previous generation may still hold the old structures.
  EpochManager& em = EpochManager::Global();
  for (Leaf* leaf : old->leaves) em.Retire(leaf);
  em.Retire(old);
}

bool FitingTree::GetFromLeaf(const Leaf& leaf, Key key,
                             Value* value) const {
  // The buffer shadows the main run: a delta-merged update lives in the
  // buffer while the stale copy is still in the array, so probe it first.
  if (!leaf.buffer.empty()) {
    auto it = BufferLowerBound(leaf.buffer, key);
    if (it != leaf.buffer.end() && it->key == key) {
      *value = it->value;
      return true;
    }
  }
  size_t slot = leaf.LowerBoundSlot(key);
  if (slot < leaf.end && leaf.keys[slot] == key) {
    *value = leaf.values[slot];
    return true;
  }
  return false;
}

bool FitingTree::Get(Key key, Value* value) const {
  EpochGuard guard;
  Directory* d = dir();
  if (d->head == kNpos) return false;
  return GetFromLeaf(*d->leaves[RouteToLeaf(*d, key)], key, value);
}

size_t FitingTree::GetBatch(std::span<const Key> keys, Value* values,
                            bool* found) const {
  EpochGuard guard;
  Directory* d = dir();
  if (d->head == kNpos) {
    std::fill(found, found + keys.size(), false);
    return 0;
  }
  // Stage 1 routes through the inner B+Tree (hot) and prefetches around
  // each leaf's model hint — the exact lines the exponential search probes
  // first — plus the side buffer when present. Stage 2 re-runs the
  // single-key leaf lookup, which is identical to Get by construction.
  constexpr size_t kTile = 16;
  const Leaf* tile_leaf[kTile];
  size_t hits = 0;
  for (size_t base = 0; base < keys.size(); base += kTile) {
    size_t m = std::min(kTile, keys.size() - base);
    for (size_t j = 0; j < m; ++j) {
      const Leaf& leaf = *d->leaves[RouteToLeaf(*d, keys[base + j])];
      tile_leaf[j] = &leaf;
      if (leaf.Count() > 0) {
        size_t hint = leaf.SlotHint(keys[base + j]);
        constexpr size_t kReach = 16;  // Covers the first gallop steps.
        size_t lo = hint > leaf.begin + kReach ? hint - kReach : leaf.begin;
        size_t hi = std::min(leaf.end, hint + kReach);
        PrefetchSearchWindow(leaf.keys.data(), lo, hi);
      }
      if (!leaf.buffer.empty()) {
        __builtin_prefetch(leaf.buffer.data());
      }
    }
    for (size_t j = 0; j < m; ++j) {
      bool ok = GetFromLeaf(*tile_leaf[j], keys[base + j], &values[base + j]);
      found[base + j] = ok;
      hits += ok ? 1 : 0;
    }
  }
  return hits;
}

void FitingTree::MergeLeafContents(const Leaf& leaf,
                                   std::vector<KeyValue>* out) {
  out->reserve(out->size() + leaf.Count() + leaf.buffer.size());
  size_t a = leaf.begin;
  size_t b = 0;
  while (a < leaf.end && b < leaf.buffer.size()) {
    if (leaf.keys[a] < leaf.buffer[b].key) {
      out->push_back({leaf.keys[a], leaf.values[a]});
      ++a;
    } else if (leaf.keys[a] > leaf.buffer[b].key) {
      out->push_back(leaf.buffer[b]);
      ++b;
    } else {
      // Key on both sides: the buffer holds the newer write (it shadows
      // the array on reads); drop the stale array copy.
      out->push_back(leaf.buffer[b]);
      ++a;
      ++b;
    }
  }
  for (; a < leaf.end; ++a) out->push_back({leaf.keys[a], leaf.values[a]});
  for (; b < leaf.buffer.size(); ++b) out->push_back(leaf.buffer[b]);
}

FitingTree::LeafInsertResult FitingTree::InsertIntoLeaf(
    Leaf& leaf, Key key, Value value, bool allow_overflow) {
  // Existing key in the buffer? Update there — the buffer shadows the
  // main run, so updating the array copy would be invisible to reads.
  if (!leaf.buffer.empty()) {
    auto it = std::lower_bound(
        leaf.buffer.begin(), leaf.buffer.end(), key,
        [](const KeyValue& kv, Key k) { return kv.key < k; });
    if (it != leaf.buffer.end() && it->key == key) {
      it->value = value;
      ++leaf.version;
      return LeafInsertResult::kUpdated;
    }
  }
  size_t slot = leaf.LowerBoundSlot(key);
  if (slot < leaf.end && leaf.keys[slot] == key) {
    leaf.values[slot] = value;
    ++leaf.version;
    return LeafInsertResult::kUpdated;
  }
  // New key. Record whether the model's prediction missed its error bound
  // — the writer-side drift signal CollectDrift folds into pressure.
  if (leaf.Count() > 0) {
    size_t hint = leaf.SlotHint(key);
    size_t miss = hint > slot ? hint - slot : slot - hint;
    if (miss > eps_) ++leaf.err_violations;
  }

  if (mode_ == InsertMode::kInplace) {
    size_t left_len = slot - leaf.begin;
    size_t right_len = leaf.end - slot;
    bool can_left = leaf.begin > 0;
    bool can_right = leaf.end < leaf.keys.size();
    if ((can_left && left_len <= right_len) || (can_left && !can_right)) {
      // Shift [begin, slot) one to the left; the new key lands at slot-1.
      for (size_t i = leaf.begin; i < slot; ++i) {
        leaf.keys[i - 1] = leaf.keys[i];
        leaf.values[i - 1] = leaf.values[i];
      }
      --leaf.begin;
      leaf.keys[slot - 1] = key;
      leaf.values[slot - 1] = value;
      moved_keys_.fetch_add(left_len, std::memory_order_relaxed);
      ++leaf.version;
      return LeafInsertResult::kInserted;
    }
    if (can_right) {
      // Shift [slot, end) one to the right; the new key lands at slot.
      for (size_t i = leaf.end; i > slot; --i) {
        leaf.keys[i] = leaf.keys[i - 1];
        leaf.values[i] = leaf.values[i - 1];
      }
      ++leaf.end;
      leaf.keys[slot] = key;
      leaf.values[slot] = value;
      moved_keys_.fetch_add(right_len, std::memory_order_relaxed);
      ++leaf.version;
      return LeafInsertResult::kInserted;
    }
    if (!allow_overflow) return LeafInsertResult::kNeedsRetrain;
    // Gaps exhausted under maintenance mode: overflow into the buffer and
    // let the maintainer rebuild the leaf off-thread.
  }
  auto it = std::lower_bound(
      leaf.buffer.begin(), leaf.buffer.end(), key,
      [](const KeyValue& kv, Key k) { return kv.key < k; });
  moved_keys_.fetch_add(static_cast<uint64_t>(leaf.buffer.end() - it),
                        std::memory_order_relaxed);
  leaf.buffer.insert(it, {key, value});
  ++leaf.version;
  return LeafInsertResult::kInserted;
}

void FitingTree::RetrainLeafInPlace(Directory& d, size_t idx,
                                    std::vector<KeyValue> data) {
  Timer timer;
  Leaf* old_leaf = d.leaves[idx];
  size_t old_next = old_leaf->next;

  std::vector<Key> keys;
  keys.reserve(data.size());
  for (const KeyValue& kv : data) keys.push_back(kv.key);
  PlaResult pla = BuildOptimalPla(keys.data(), keys.size(), eps_);

  size_t prev_slot = kNpos;
  for (size_t s = 0; s < pla.segments.size(); ++s) {
    const Segment& seg = pla.segments[s];
    auto leaf = MakeLeaf(data.data() + seg.base_rank, seg.count, seg.slope,
                         seg.intercept);
    size_t slot;
    if (s == 0) {
      slot = idx;  // Reuse the replaced leaf's position.
      d.leaves[idx] = leaf.release();
    } else {
      slot = d.leaves.size();
      d.leaves.push_back(leaf.release());
      d.inner.Insert(seg.first_key, static_cast<Value>(slot));
    }
    if (prev_slot != kNpos) d.leaves[prev_slot]->next = slot;
    prev_slot = slot;
  }
  // The last new leaf resumes the old chain.
  d.leaves[prev_slot]->next = old_next;

  // A reader from a previous epoch may still be probing the replaced
  // leaf; never free it in place.
  EpochManager::Global().Retire(old_leaf);
  dir_version_.fetch_add(1, std::memory_order_relaxed);
  retrain_count_.fetch_add(1, std::memory_order_relaxed);
  retrain_nanos_.fetch_add(timer.ElapsedNanos(), std::memory_order_relaxed);
}

std::unique_ptr<FitingTree::Plan> FitingTree::BuildRetrainPlan(
    const Directory& d, size_t idx, std::vector<KeyValue> data) const {
  Timer timer;
  auto plan = std::make_unique<Plan>();
  plan->slot = idx;

  std::vector<Key> keys;
  keys.reserve(data.size());
  for (const KeyValue& kv : data) keys.push_back(kv.key);
  PlaResult pla = BuildOptimalPla(keys.data(), keys.size(), eps_);

  size_t old_next = d.leaves[idx]->next;
  auto replacement = std::make_unique<Directory>();
  replacement->leaves = d.leaves;  // Shared, except slot idx + appendees.
  replacement->head = d.head;
  size_t prev_slot = kNpos;
  for (size_t s = 0; s < pla.segments.size(); ++s) {
    const Segment& seg = pla.segments[s];
    auto leaf = MakeLeaf(data.data() + seg.base_rank, seg.count, seg.slope,
                         seg.intercept);
    Leaf* raw = leaf.get();
    plan->new_leaves.push_back(std::move(leaf));
    size_t slot;
    if (s == 0) {
      slot = idx;
      replacement->leaves[idx] = raw;
    } else {
      slot = replacement->leaves.size();
      replacement->leaves.push_back(raw);
    }
    // Only new leaves are rechained; shared predecessors keep pointing at
    // slot idx, which the first new leaf reuses.
    if (prev_slot != kNpos) replacement->leaves[prev_slot]->next = slot;
    prev_slot = slot;
  }
  replacement->leaves[prev_slot]->next = old_next;

  // Fresh inner B+Tree over every (first_key -> slot) pair. Slot order is
  // not key order after past retrains, so sort before the bulk load.
  std::vector<KeyValue> entries;
  entries.reserve(replacement->leaves.size());
  for (size_t s = 0; s < replacement->leaves.size(); ++s) {
    entries.push_back(
        {replacement->leaves[s]->first_key, static_cast<Value>(s)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const KeyValue& x, const KeyValue& y) { return x.key < y.key; });
  replacement->inner.BulkLoad(entries);

  plan->replacement = std::move(replacement);
  plan->snapshot = std::move(data);
  plan->train_nanos = timer.ElapsedNanos();
  return plan;
}

void FitingTree::InstallPlan(Plan& plan) {
  Timer timer;
  Directory* old_dir = dir_.load(std::memory_order_relaxed);
  Leaf* old_leaf = old_dir->leaves[plan.slot];
  if (old_leaf->version != plan.leaf_version) {
    // Writes raced the off-thread training. Replay them into the
    // replacement leaves' buffers: diff the live merged content against
    // the snapshot the model was trained on; anything new or changed is
    // delta-merged (and, for changed values, shadows the stale array
    // copy — the newest-wins contract the retrain tests pin down).
    std::vector<KeyValue> current;
    MergeLeafContents(*old_leaf, &current);
    size_t j = 0;
    for (const KeyValue& kv : current) {
      while (j < plan.snapshot.size() && plan.snapshot[j].key < kv.key) ++j;
      if (j < plan.snapshot.size() && plan.snapshot[j] == kv) {
        ++j;
        continue;
      }
      Leaf* target = plan.new_leaves.front().get();
      for (const auto& nl : plan.new_leaves) {
        if (nl->first_key <= kv.key) {
          target = nl.get();
        } else {
          break;
        }
      }
      auto it = std::lower_bound(
          target->buffer.begin(), target->buffer.end(), kv.key,
          [](const KeyValue& x, Key k) { return x.key < k; });
      target->buffer.insert(it, kv);
    }
  }
  dir_.store(plan.replacement.release(), std::memory_order_release);
  dir_version_.fetch_add(1, std::memory_order_relaxed);
  for (auto& nl : plan.new_leaves) nl.release();  // Now owned by dir_.
  EpochManager& em = EpochManager::Global();
  em.Retire(old_leaf);
  em.Retire(old_dir);
  retrain_count_.fetch_add(1, std::memory_order_relaxed);
  retrain_nanos_.fetch_add(plan.train_nanos + timer.ElapsedNanos(),
                           std::memory_order_relaxed);
}

bool FitingTree::Insert(Key key, Value value) {
  const bool maint = maintenance_mode_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(writer_mu_, std::defer_lock);
  if (maint) lock.lock();

  Directory* d = dir();
  if (d->head == kNpos) {
    BulkLoadLocked(std::vector<KeyValue>{{key, value}});
    return true;
  }
  size_t idx = RouteToLeaf(*d, key);
  Leaf& leaf = *d->leaves[idx];
  LeafInsertResult res = InsertIntoLeaf(leaf, key, value, maint);
  if (res == LeafInsertResult::kUpdated) return true;
  if (res == LeafInsertResult::kNeedsRetrain) {
    // Inplace mode, gaps exhausted, no maintainer: merge in the new key
    // and retrain on the spot — the stop-the-world path the drift bench
    // measures against background retraining.
    std::vector<KeyValue> merged;
    MergeLeafContents(leaf, &merged);
    auto pos = std::lower_bound(
        merged.begin(), merged.end(), key,
        [](const KeyValue& kv, Key k) { return kv.key < k; });
    merged.insert(pos, {key, value});
    ++size_;
    RetrainLeafInPlace(*d, idx, std::move(merged));
    return true;
  }
  ++size_;

  size_t pending = leaf.buffer.size();
  if (maint) {
    if (pending >= kHardCap * reserve_) {
      // Hard cap: the maintainer fell behind this leaf. Rebuild inline as
      // backpressure, but still copy-on-write + swap so concurrent
      // readers stay lock-free.
      std::vector<KeyValue> merged;
      MergeLeafContents(leaf, &merged);
      auto plan = BuildRetrainPlan(*d, idx, std::move(merged));
      plan->dir_version = dir_version_.load(std::memory_order_relaxed);
      plan->leaf_version = leaf.version;
      InstallPlan(*plan);
    }
  } else if (mode_ == InsertMode::kBuffer && pending >= reserve_) {
    // Buffer full: merge + retrain inline (the paper's strategy).
    std::vector<KeyValue> merged;
    MergeLeafContents(leaf, &merged);
    RetrainLeafInPlace(*d, idx, std::move(merged));
  }
  return true;
}

size_t FitingTree::Scan(Key from, size_t count,
                        std::vector<KeyValue>* out) const {
  EpochGuard guard;
  Directory* d = dir();
  if (d->head == kNpos || count == 0) return 0;
  size_t idx = RouteToLeaf(*d, from);
  size_t copied = 0;
  while (idx != kNpos && copied < count) {
    const Leaf& leaf = *d->leaves[idx];
    // Merge the leaf's main run with its buffer on the fly; on equal keys
    // the buffer entry is the newer write and the array copy is skipped.
    size_t a = leaf.LowerBoundSlot(from);
    auto bit = BufferLowerBound(leaf.buffer, from);
    while (copied < count && (a < leaf.end || bit != leaf.buffer.end())) {
      bool have_main = a < leaf.end;
      bool have_buf = bit != leaf.buffer.end();
      if (have_main && have_buf && leaf.keys[a] == bit->key) {
        out->push_back(*bit);
        ++a;
        ++bit;
      } else if (have_main && (!have_buf || leaf.keys[a] < bit->key)) {
        out->push_back({leaf.keys[a], leaf.values[a]});
        ++a;
      } else {
        out->push_back(*bit);
        ++bit;
      }
      ++copied;
    }
    idx = leaf.next;
    from = 0;
  }
  return copied;
}

double FitingTree::LeafPressure(const Leaf& leaf) const {
  double reserve = static_cast<double>(reserve_);
  double occupancy;
  if (mode_ == InsertMode::kBuffer) {
    occupancy = static_cast<double>(leaf.buffer.size()) / reserve;
  } else {
    // Gap exhaustion reaches 1.0 exactly when the next unlucky insert
    // would retrain inline; overflow entries push it past 1.0.
    size_t gaps_left = leaf.begin + (leaf.keys.size() - leaf.end);
    occupancy = 1.0 - static_cast<double>(gaps_left) / (2.0 * reserve) +
                static_cast<double>(leaf.buffer.size()) / reserve;
  }
  double err_rate = static_cast<double>(leaf.err_violations) / reserve;
  return std::max(occupancy, err_rate);
}

void FitingTree::CollectDrift(double threshold,
                              std::vector<DriftCandidate>* out) {
  // Pressure reads (buffer sizes, violation counters) race the writer, so
  // take the latch — the scan is two loads per leaf.
  std::lock_guard<std::mutex> lock(writer_mu_);
  Directory* d = dir();
  for (size_t i = 0; i < d->leaves.size(); ++i) {
    double p = LeafPressure(*d->leaves[i]);
    if (p >= threshold) out->push_back({i, p});
  }
  std::sort(out->begin(), out->end(),
            [](const DriftCandidate& x, const DriftCandidate& y) {
              return x.pressure > y.pressure;
            });
}

std::unique_ptr<PreparedRetrain> FitingTree::PrepareRetrain(
    uint64_t segment_id) {
  // The guard outlives the latch: it keeps the directory and its leaves
  // (structurally immutable in maintenance mode — every structural change
  // publishes a new directory) alive through the off-thread training.
  EpochGuard guard;
  std::vector<KeyValue> merged;
  uint64_t leaf_version;
  uint64_t dir_version;
  Directory* d;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    d = dir();
    if (segment_id >= d->leaves.size()) return nullptr;
    Leaf* leaf = d->leaves[segment_id];
    MergeLeafContents(*leaf, &merged);
    if (merged.empty()) return nullptr;
    leaf_version = leaf->version;
    dir_version = dir_version_.load(std::memory_order_relaxed);
  }
  // Train outside the latch: the expensive part never blocks the writer.
  auto plan =
      BuildRetrainPlan(*d, static_cast<size_t>(segment_id), std::move(merged));
  plan->leaf_version = leaf_version;
  plan->dir_version = dir_version;
  return plan;
}

bool FitingTree::PublishRetrain(std::unique_ptr<PreparedRetrain> plan_in) {
  std::unique_ptr<Plan> plan(static_cast<Plan*>(plan_in.release()));
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (plan->dir_version != dir_version_.load(std::memory_order_relaxed)) {
    // The directory changed since Prepare (another publish, a bulk load);
    // the plan's shared-leaf pointers are stale. Caller re-prepares.
    return false;
  }
  InstallPlan(*plan);
  return true;
}

void FitingTree::SetMaintenanceMode(bool enabled) {
  maintenance_mode_.store(enabled, std::memory_order_release);
}

size_t FitingTree::IndexSizeBytes() const {
  // Inner B+Tree + per-leaf model metadata; the sorted key/value arrays
  // are the data, not the index (Table III convention).
  EpochGuard guard;
  Directory* d = dir();
  return d->inner.IndexSizeBytes() + d->leaves.size() * sizeof(Leaf) +
         sizeof(Directory);
}

size_t FitingTree::TotalSizeBytes() const {
  EpochGuard guard;
  Directory* d = dir();
  size_t bytes = d->inner.IndexSizeBytes() +
                 d->leaves.size() * sizeof(Leaf) + sizeof(Directory);
  for (const Leaf* leaf : d->leaves) {
    bytes += leaf->keys.capacity() * sizeof(Key) +
             leaf->values.capacity() * sizeof(Value) +
             leaf->buffer.capacity() * sizeof(KeyValue);
  }
  return bytes;
}

IndexStats FitingTree::Stats() const {
  IndexStats s;
  s.max_error = built_max_error_;
  s.mean_error = built_mean_error_;
  s.retrain_count = retrain_count_.load(std::memory_order_relaxed);
  s.retrain_nanos = retrain_nanos_.load(std::memory_order_relaxed);
  s.moved_keys = moved_keys_.load(std::memory_order_relaxed);
  EpochGuard guard;
  Directory* d = dir();
  s.leaf_count = d->leaves.size();
  IndexStats inner_stats = d->inner.Stats();
  s.inner_count = inner_stats.inner_count + inner_stats.leaf_count;
  s.avg_depth = inner_stats.avg_depth + 1;
  return s;
}

}  // namespace pieces
