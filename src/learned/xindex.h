// XIndex (Tang et al., PPoPP'20): a concurrent updatable learned index.
// A two-stage RMI root routes keys to *group* nodes; each group holds a
// sorted main array approximated by a least-squares linear model (LSA)
// plus a sorted insert buffer. Inserts go to the buffer (offsite strategy);
// when the buffer fills, the group compacts (merge + retrain) and splits
// when it grows past the size limit. Concurrency follows the original's
// spirit with fine-grained locking: a reader-writer lock per group plus a
// reader-writer lock on the group directory; the root model is rebuilt
// after splits (lookups tolerate root staleness via exponential search
// over the pivot array, so correctness never depends on model accuracy).
#ifndef PIECES_LEARNED_XINDEX_H_
#define PIECES_LEARNED_XINDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/linear_model.h"
#include "index/ordered_index.h"

namespace pieces {

class XIndex : public OrderedIndex {
 public:
  explicit XIndex(size_t group_size = 4096, size_t buffer_threshold = 256)
      : group_size_(group_size), buffer_threshold_(buffer_threshold) {}

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  size_t GetBatch(std::span<const Key> keys, Value* values,
                  bool* found) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "XIndex"; }
  bool SupportsConcurrentWrites() const override { return true; }

 private:
  struct Group {
    Key pivot = 0;
    std::vector<Key> keys;
    std::vector<Value> values;
    LinearModel model;     // key -> rank within the group.
    size_t max_err = 0;    // Model's true max error over the main array.
    std::vector<KeyValue> buffer;  // Sorted pending inserts.
    mutable std::shared_mutex mutex;

    void Retrain();
    // Rank of first main key >= `key` (exp. search from the model hint).
    size_t LowerBoundRank(Key key) const;
  };

  // Index into groups_ for `key`; caller holds groups_mutex_ (any mode).
  size_t RouteToGroup(Key key) const;
  // Rebuilds the two-stage root over pivots; caller holds groups_mutex_
  // exclusively (or is single-threaded).
  void RebuildRoot();
  // Merges buffer into main; caller holds the group's unique lock.
  void CompactGroup(Group* g);

  size_t group_size_;
  size_t buffer_threshold_;

  mutable std::shared_mutex groups_mutex_;  // Guards directory layout.
  std::vector<std::shared_ptr<Group>> groups_;
  std::vector<Key> pivots_;
  // Two-stage RMI over pivots_.
  LinearModel root_stage1_;
  std::vector<LinearModel> root_stage2_;

  mutable std::shared_mutex stats_mutex_;
  IndexStats update_stats_;
  std::atomic<uint64_t> moved_keys_{0};
};

}  // namespace pieces

#endif  // PIECES_LEARNED_XINDEX_H_
