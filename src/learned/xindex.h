// XIndex (Tang et al., PPoPP'20): a concurrent updatable learned index.
// A two-stage RMI root routes keys to *group* nodes; each group holds a
// sorted main array approximated by a least-squares linear model (LSA)
// plus a sorted insert buffer. Inserts go to the buffer (offsite strategy);
// when the buffer fills, the group compacts (merge + retrain) and splits
// when it grows past the size limit. Concurrency follows the original's
// spirit: a reader-writer lock on the group directory, a reader-writer
// lock per group guarding the *buffer*, and an immutable main array
// (GroupData) behind an atomic pointer — point reads probe the main array
// lock-free under an EpochGuard, so a compaction (inline or published by
// the background maintainer) swaps the pointer and retires the old array
// without ever blocking readers. The root model is rebuilt after splits
// (lookups tolerate root staleness via exponential search over the pivot
// array, so correctness never depends on model accuracy).
//
// Because the main array is immutable, updating a key that lives there
// writes a shadowing entry into the buffer instead of mutating in place;
// reads probe the buffer first and compaction resolves the duplicate in
// favour of the buffer (newest wins).
#ifndef PIECES_LEARNED_XINDEX_H_
#define PIECES_LEARNED_XINDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/linear_model.h"
#include "index/maintenance.h"
#include "index/ordered_index.h"

namespace pieces {

class XIndex : public OrderedIndex, public MaintenanceHook {
 public:
  explicit XIndex(size_t group_size = 4096, size_t buffer_threshold = 256)
      : group_size_(group_size),
        buffer_threshold_(std::max<size_t>(1, buffer_threshold)) {}

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  size_t GetBatch(std::span<const Key> keys, Value* values,
                  bool* found) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "XIndex"; }
  bool SupportsConcurrentWrites() const override { return true; }
  MaintenanceHook* maintenance() override { return this; }

  // MaintenanceHook. segment_id is the group's pivot key (stable across
  // compactions; invalidated by splits, which Prepare/Publish detect).
  void CollectDrift(double threshold,
                    std::vector<DriftCandidate>* out) override;
  std::unique_ptr<PreparedRetrain> PrepareRetrain(
      uint64_t segment_id) override;
  bool PublishRetrain(std::unique_ptr<PreparedRetrain> plan) override;
  void SetMaintenanceMode(bool enabled) override;

 private:
  // Past this multiple of buffer_threshold_ a maintenance-mode group
  // compacts inline anyway — backpressure when the maintainer lags.
  static constexpr size_t kHardCap = 4;

  // The immutable trained state of a group. Swapped wholesale on
  // compaction/publish; readers hold it via EpochGuard, never a lock.
  struct GroupData {
    std::vector<Key> keys;
    std::vector<Value> values;
    LinearModel model;   // key -> rank within the group.
    size_t max_err = 0;  // Model's true max error over the main array.

    void Train();
    // Rank of first main key >= `key` (exp. search from the model hint).
    size_t LowerBoundRank(Key key) const;
  };

  struct Group {
    Key pivot = 0;
    std::atomic<GroupData*> data{nullptr};  // Never null once constructed.
    // Bumped under the unique lock on every data swap; Prepare snapshots
    // it and Publish aborts on mismatch (pointer comparison alone would
    // be ABA-prone once the old array is reclaimed).
    uint64_t data_version = 0;
    std::vector<KeyValue> buffer;  // Sorted pending inserts; mutex-guarded.
    mutable std::shared_mutex mutex;

    Group();
    ~Group();
    // Publishes `nd` and retires the previous array. Caller holds the
    // group's unique lock (or the group is not yet visible).
    void SwapData(std::unique_ptr<GroupData> nd);
  };

  struct Plan;  // PreparedRetrain implementation (xindex.cc).

  // Index into groups_ for `key`; caller holds groups_mutex_ (any mode).
  size_t RouteToGroup(Key key) const;
  // Rebuilds the two-stage root over pivots; caller holds groups_mutex_
  // exclusively (or is single-threaded).
  void RebuildRoot();
  // Merges buffer into main; caller holds the group's unique lock.
  void CompactGroup(Group* g);
  // Sorted merge of main + buffer with duplicate keys resolving to the
  // buffer entry (the newer write). Does not train.
  static std::unique_ptr<GroupData> MergeGroupData(
      const GroupData& data, const std::vector<KeyValue>& buffer);

  size_t group_size_;
  size_t buffer_threshold_;

  mutable std::shared_mutex groups_mutex_;  // Guards directory layout.
  std::vector<std::shared_ptr<Group>> groups_;
  std::vector<Key> pivots_;
  // Two-stage RMI over pivots_.
  LinearModel root_stage1_;
  std::vector<LinearModel> root_stage2_;

  std::atomic<bool> maintenance_mode_{false};
  // Retrain accounting is shared between inserting threads and the
  // maintainer, so plain fields under a stats mutex would race Stats().
  std::atomic<uint64_t> retrain_count_{0};
  std::atomic<uint64_t> retrain_nanos_{0};
  std::atomic<uint64_t> moved_keys_{0};
};

}  // namespace pieces

#endif  // PIECES_LEARNED_XINDEX_H_
