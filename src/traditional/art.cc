#include "traditional/art.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pieces {
namespace {

// Big-endian byte i of a key, so byte-wise descent follows key order.
inline uint8_t KeyByte(Key key, unsigned depth) {
  return static_cast<uint8_t>(key >> (56 - 8 * depth));
}

}  // namespace

struct ArtIndex::Node {
  enum Type : uint8_t { kLeaf, kNode4, kNode16, kNode48, kNode256 };
  Type type;
  explicit Node(Type t) : type(t) {}
};

namespace {

using Node = ArtIndex::Node;

struct Leaf : Node {
  Leaf(Key k, Value v) : Node(kLeaf), key(k), value(v) {}
  Key key;
  Value value;
};

struct Node4 : Node {
  Node4() : Node(kNode4) {}
  uint8_t count = 0;
  uint8_t keys[4] = {};
  Node* children[4] = {};
};

struct Node16 : Node {
  Node16() : Node(kNode16) {}
  uint8_t count = 0;
  uint8_t keys[16] = {};
  Node* children[16] = {};
};

struct Node48 : Node {
  Node48() : Node(kNode48) {
    std::memset(child_index, 0xff, sizeof(child_index));
  }
  uint8_t count = 0;
  uint8_t child_index[256];
  Node* children[48] = {};
};

struct Node256 : Node {
  Node256() : Node(kNode256) {}
  uint16_t count = 0;
  Node* children[256] = {};
};

Node** FindChild(Node* n, uint8_t byte) {
  switch (n->type) {
    case Node::kNode4: {
      auto* node = static_cast<Node4*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        if (node->keys[i] == byte) return &node->children[i];
      }
      return nullptr;
    }
    case Node::kNode16: {
      auto* node = static_cast<Node16*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        if (node->keys[i] == byte) return &node->children[i];
      }
      return nullptr;
    }
    case Node::kNode48: {
      auto* node = static_cast<Node48*>(n);
      uint8_t idx = node->child_index[byte];
      return idx == 0xff ? nullptr : &node->children[idx];
    }
    case Node::kNode256: {
      auto* node = static_cast<Node256*>(n);
      return node->children[byte] == nullptr ? nullptr
                                             : &node->children[byte];
    }
    default:
      return nullptr;
  }
}

// Adds child to a node, growing it if full. *slot is the pointer holding
// `n` (so growth can replace it). Updates byte accounting via deltas.
void AddChild(Node** slot, uint8_t byte, Node* child, size_t* node_bytes) {
  Node* n = *slot;
  switch (n->type) {
    case Node::kNode4: {
      auto* node = static_cast<Node4*>(n);
      if (node->count < 4) {
        uint8_t pos = 0;
        while (pos < node->count && node->keys[pos] < byte) ++pos;
        std::copy_backward(node->keys + pos, node->keys + node->count,
                           node->keys + node->count + 1);
        std::copy_backward(node->children + pos,
                           node->children + node->count,
                           node->children + node->count + 1);
        node->keys[pos] = byte;
        node->children[pos] = child;
        ++node->count;
        return;
      }
      auto* bigger = new Node16();
      std::copy(node->keys, node->keys + 4, bigger->keys);
      std::copy(node->children, node->children + 4, bigger->children);
      bigger->count = 4;
      *slot = bigger;
      *node_bytes += sizeof(Node16) - sizeof(Node4);
      delete node;
      AddChild(slot, byte, child, node_bytes);
      return;
    }
    case Node::kNode16: {
      auto* node = static_cast<Node16*>(n);
      if (node->count < 16) {
        uint8_t pos = 0;
        while (pos < node->count && node->keys[pos] < byte) ++pos;
        std::copy_backward(node->keys + pos, node->keys + node->count,
                           node->keys + node->count + 1);
        std::copy_backward(node->children + pos,
                           node->children + node->count,
                           node->children + node->count + 1);
        node->keys[pos] = byte;
        node->children[pos] = child;
        ++node->count;
        return;
      }
      auto* bigger = new Node48();
      for (uint8_t i = 0; i < 16; ++i) {
        bigger->child_index[node->keys[i]] = i;
        bigger->children[i] = node->children[i];
      }
      bigger->count = 16;
      *slot = bigger;
      *node_bytes += sizeof(Node48) - sizeof(Node16);
      delete node;
      AddChild(slot, byte, child, node_bytes);
      return;
    }
    case Node::kNode48: {
      auto* node = static_cast<Node48*>(n);
      if (node->count < 48) {
        node->children[node->count] = child;
        node->child_index[byte] = node->count;
        ++node->count;
        return;
      }
      auto* bigger = new Node256();
      for (int b = 0; b < 256; ++b) {
        if (node->child_index[b] != 0xff) {
          bigger->children[b] = node->children[node->child_index[b]];
          ++bigger->count;
        }
      }
      *slot = bigger;
      *node_bytes += sizeof(Node256) - sizeof(Node48);
      delete node;
      AddChild(slot, byte, child, node_bytes);
      return;
    }
    case Node::kNode256: {
      auto* node = static_cast<Node256*>(n);
      node->children[byte] = child;
      ++node->count;
      return;
    }
    default:
      assert(false);
  }
}

void DeleteRec(Node* n) {
  if (n == nullptr) return;
  switch (n->type) {
    case Node::kLeaf:
      delete static_cast<Leaf*>(n);
      return;
    case Node::kNode4: {
      auto* node = static_cast<Node4*>(n);
      for (uint8_t i = 0; i < node->count; ++i) DeleteRec(node->children[i]);
      delete node;
      return;
    }
    case Node::kNode16: {
      auto* node = static_cast<Node16*>(n);
      for (uint8_t i = 0; i < node->count; ++i) DeleteRec(node->children[i]);
      delete node;
      return;
    }
    case Node::kNode48: {
      auto* node = static_cast<Node48*>(n);
      for (uint8_t i = 0; i < node->count; ++i) DeleteRec(node->children[i]);
      delete node;
      return;
    }
    case Node::kNode256: {
      auto* node = static_cast<Node256*>(n);
      for (int b = 0; b < 256; ++b) DeleteRec(node->children[b]);
      delete node;
      return;
    }
  }
}

// Ordered scan helper: visits leaves with key >= from (when bounded) in key
// order until `count` pairs are collected.
bool ScanRec(const Node* n, unsigned depth, Key from, bool bounded,
             size_t count, std::vector<KeyValue>* out) {
  if (n == nullptr) return false;
  if (n->type == Node::kLeaf) {
    const auto* leaf = static_cast<const Leaf*>(n);
    if (!bounded || leaf->key >= from) {
      out->push_back({leaf->key, leaf->value});
      if (out->size() >= count) return true;
    }
    return false;
  }
  uint8_t fb = bounded ? KeyByte(from, depth) : 0;
  auto visit = [&](uint8_t byte, const Node* child) {
    if (bounded && byte < fb) return false;
    bool child_bounded = bounded && byte == fb;
    return ScanRec(child, depth + 1, from, child_bounded, count, out);
  };
  switch (n->type) {
    case Node::kNode4: {
      const auto* node = static_cast<const Node4*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        if (visit(node->keys[i], node->children[i])) return true;
      }
      return false;
    }
    case Node::kNode16: {
      const auto* node = static_cast<const Node16*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        if (visit(node->keys[i], node->children[i])) return true;
      }
      return false;
    }
    case Node::kNode48: {
      const auto* node = static_cast<const Node48*>(n);
      for (int b = 0; b < 256; ++b) {
        if (node->child_index[b] != 0xff &&
            visit(static_cast<uint8_t>(b),
                  node->children[node->child_index[b]])) {
          return true;
        }
      }
      return false;
    }
    case Node::kNode256: {
      const auto* node = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; ++b) {
        if (node->children[b] != nullptr &&
            visit(static_cast<uint8_t>(b), node->children[b])) {
          return true;
        }
      }
      return false;
    }
    default:
      return false;
  }
}

void StatsRec(const Node* n, unsigned depth, size_t* leaves,
              uint64_t* depth_sum, size_t* inner) {
  if (n == nullptr) return;
  if (n->type == Node::kLeaf) {
    ++*leaves;
    *depth_sum += depth;
    return;
  }
  ++*inner;
  switch (n->type) {
    case Node::kNode4: {
      const auto* node = static_cast<const Node4*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        StatsRec(node->children[i], depth + 1, leaves, depth_sum, inner);
      }
      return;
    }
    case Node::kNode16: {
      const auto* node = static_cast<const Node16*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        StatsRec(node->children[i], depth + 1, leaves, depth_sum, inner);
      }
      return;
    }
    case Node::kNode48: {
      const auto* node = static_cast<const Node48*>(n);
      for (uint8_t i = 0; i < node->count; ++i) {
        StatsRec(node->children[i], depth + 1, leaves, depth_sum, inner);
      }
      return;
    }
    case Node::kNode256: {
      const auto* node = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; ++b) {
        StatsRec(node->children[b], depth + 1, leaves, depth_sum, inner);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace

ArtIndex::~ArtIndex() { Clear(); }

void ArtIndex::Clear() {
  DeleteRec(root_);
  root_ = nullptr;
  size_ = 0;
  node_bytes_ = 0;
  node_count_ = 0;
}

void ArtIndex::BulkLoad(std::span<const KeyValue> data) {
  Clear();
  for (const KeyValue& kv : data) Insert(kv.key, kv.value);
}

bool ArtIndex::Get(Key key, Value* value) const {
  const Node* n = root_;
  unsigned depth = 0;
  while (n != nullptr) {
    if (n->type == Node::kLeaf) {
      const auto* leaf = static_cast<const Leaf*>(n);
      if (leaf->key == key) {
        *value = leaf->value;
        return true;
      }
      return false;
    }
    Node** child = FindChild(const_cast<Node*>(n), KeyByte(key, depth));
    if (child == nullptr) return false;
    n = *child;
    ++depth;
  }
  return false;
}

bool ArtIndex::Insert(Key key, Value value) {
  if (root_ == nullptr) {
    root_ = new Leaf(key, value);
    node_bytes_ += sizeof(Leaf);
    ++node_count_;
    ++size_;
    return true;
  }
  Node** slot = &root_;
  unsigned depth = 0;
  while (true) {
    Node* n = *slot;
    if (n->type == Node::kLeaf) {
      auto* leaf = static_cast<Leaf*>(n);
      if (leaf->key == key) {
        leaf->value = value;
        return true;
      }
      // Lazy expansion: extend the path until the keys' bytes diverge.
      while (KeyByte(leaf->key, depth) == KeyByte(key, depth)) {
        auto* inner = new Node4();
        node_bytes_ += sizeof(Node4);
        ++node_count_;
        *slot = inner;
        AddChild(slot, KeyByte(key, depth), leaf, &node_bytes_);
        // Descend into the single child slot just created (it holds leaf).
        slot = FindChild(*slot, KeyByte(key, depth));
        ++depth;
      }
      auto* inner = new Node4();
      node_bytes_ += sizeof(Node4);
      ++node_count_;
      *slot = inner;
      AddChild(slot, KeyByte(leaf->key, depth), leaf, &node_bytes_);
      auto* new_leaf = new Leaf(key, value);
      node_bytes_ += sizeof(Leaf);
      ++node_count_;
      AddChild(slot, KeyByte(key, depth), new_leaf, &node_bytes_);
      ++size_;
      return true;
    }
    Node** child = FindChild(n, KeyByte(key, depth));
    if (child == nullptr) {
      auto* new_leaf = new Leaf(key, value);
      node_bytes_ += sizeof(Leaf);
      ++node_count_;
      AddChild(slot, KeyByte(key, depth), new_leaf, &node_bytes_);
      ++size_;
      return true;
    }
    slot = child;
    ++depth;
  }
}

size_t ArtIndex::Scan(Key from, size_t count, std::vector<KeyValue>* out)
    const {
  if (count == 0 || root_ == nullptr) return 0;
  size_t before = out->size();
  ScanRec(root_, 0, from, true, before + count, out);
  return out->size() - before;
}

size_t ArtIndex::IndexSizeBytes() const { return node_bytes_; }

size_t ArtIndex::TotalSizeBytes() const { return node_bytes_; }

IndexStats ArtIndex::Stats() const {
  IndexStats s;
  size_t leaves = 0;
  size_t inner = 0;
  uint64_t depth_sum = 0;
  StatsRec(root_, 0, &leaves, &depth_sum, &inner);
  s.leaf_count = leaves;
  s.inner_count = inner;
  s.avg_depth = leaves == 0 ? 0
                            : static_cast<double>(depth_sum) /
                                  static_cast<double>(leaves);
  return s;
}

}  // namespace pieces
