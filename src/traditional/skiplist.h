// A concurrent skip list (the paper's "Skiplist" baseline, modelled on
// LevelDB's): tower height is geometric with p = 1/4, next pointers are
// atomic and inserts splice with CAS, so concurrent inserts and reads are
// safe without locks. No deletion (none of the paper's workloads delete).
#ifndef PIECES_TRADITIONAL_SKIPLIST_H_
#define PIECES_TRADITIONAL_SKIPLIST_H_

#include <atomic>
#include <vector>

#include "index/ordered_index.h"

namespace pieces {

class SkipList : public OrderedIndex {
 public:
  static constexpr int kMaxHeight = 20;

  SkipList();
  ~SkipList() override;

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "SkipList"; }
  bool SupportsConcurrentWrites() const override { return true; }

 private:
  struct Node;

  static Node* NewNode(Key key, Value value, int height);
  int RandomHeight();
  // Finds the first node with key >= `key`; fills prev[] when non-null.
  Node* FindGreaterOrEqual(Key key, Node** prev) const;
  void Clear();

  Node* head_;
  std::atomic<int> max_height_{1};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> node_bytes_{0};
  std::atomic<uint64_t> rnd_{0x853c49e6748fea9bull};
};

}  // namespace pieces

#endif  // PIECES_TRADITIONAL_SKIPLIST_H_
