// A B+Tree with Optimistic Lock Coupling (Leis et al., "The ART of
// Practical Synchronization"): every node carries a version lock; readers
// traverse lock-free and validate versions, writers lock only the nodes
// they modify and split full children eagerly on the way down. This stands
// in for the paper's concurrent ordered baselines (Masstree / Bw-tree),
// which occupy the same design class: a concurrent in-memory ordered tree.
#ifndef PIECES_TRADITIONAL_OLC_BTREE_H_
#define PIECES_TRADITIONAL_OLC_BTREE_H_

#include <atomic>
#include <vector>

#include "index/ordered_index.h"

namespace pieces {

class OlcBTree : public OrderedIndex {
 public:
  // Node types are public so internal helpers can name them; opaque to
  // users of the class.
  struct Node;
  struct LeafNode;
  struct InnerNode;

  static constexpr size_t kFanout = 64;

  OlcBTree();
  ~OlcBTree() override;

  OlcBTree(const OlcBTree&) = delete;
  OlcBTree& operator=(const OlcBTree&) = delete;

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "OLC-BTree"; }
  bool SupportsConcurrentWrites() const override { return true; }

 private:

  void Clear();
  bool GetOnce(Key key, Value* value, bool* found) const;
  bool InsertOnce(Key key, Value value, bool* inserted_new);

  std::atomic<Node*> root_;
  std::atomic<size_t> height_{1};
  std::atomic<size_t> leaf_nodes_{0};
  std::atomic<size_t> inner_nodes_{0};
};

}  // namespace pieces

#endif  // PIECES_TRADITIONAL_OLC_BTREE_H_
