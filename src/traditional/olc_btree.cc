#include "traditional/olc_btree.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

namespace pieces {
namespace {

// A version lock: odd = write-locked. Readers snapshot the version and
// re-validate; writers CAS the version to odd, then bump it on unlock so
// concurrent readers notice the change and restart.
class VersionLock {
 public:
  // Returns the current (even) version, or false via *ok when locked.
  uint64_t ReadLock(bool* ok) const {
    uint64_t v = version_.load(std::memory_order_acquire);
    *ok = (v & 1) == 0;
    return v;
  }
  bool Validate(uint64_t v) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_acquire) == v;
  }
  bool Upgrade(uint64_t v) {
    return version_.compare_exchange_strong(v, v + 1,
                                            std::memory_order_acquire);
  }
  void WriteLockBlocking() {
    while (true) {
      uint64_t v = version_.load(std::memory_order_acquire);
      if ((v & 1) == 0 && Upgrade(v)) return;
      std::this_thread::yield();
    }
  }
  void WriteUnlock() { version_.fetch_add(1, std::memory_order_release); }

 private:
  mutable std::atomic<uint64_t> version_{0};
};

}  // namespace

struct OlcBTree::Node {
  VersionLock lock;
  bool is_leaf;
  uint16_t count = 0;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct OlcBTree::LeafNode : OlcBTree::Node {
  LeafNode() : Node(true) {}
  Key keys[kFanout];
  Value values[kFanout];
  std::atomic<LeafNode*> next{nullptr};
};

struct OlcBTree::InnerNode : OlcBTree::Node {
  InnerNode() : Node(false) {}
  Key keys[kFanout];
  Node* children[kFanout + 1];
};

namespace {

// Optimistic readers walk nodes a locked writer may be mutating; the
// version validation discards anything torn, but under the C++ memory
// model the racing loads/stores themselves must be atomic to be defined
// (TSan flags the plain versions). Relaxed atomic_ref keeps both sides
// defined and compiles to ordinary loads/stores on x86-64.
template <typename T>
T RelaxedLoad(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_relaxed);
}

template <typename T>
void RelaxedStore(T& field, T v) {
  std::atomic_ref<T>(field).store(v, std::memory_order_relaxed);
}

// Child-pointer publication needs release/acquire: a reader that wins the
// race to a freshly spliced-in node must see its constructed fields, not
// just a valid pointer.
template <typename T>
T AcquireLoad(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_acquire);
}

template <typename T>
void ReleaseStore(T& field, T v) {
  std::atomic_ref<T>(field).store(v, std::memory_order_release);
}

// Shift arr[pos, count) right by one slot, element-wise with relaxed
// stores (std::copy_backward would race with optimistic readers).
template <typename T>
void RelaxedShiftRight(T* arr, size_t pos, size_t count) {
  for (size_t i = count; i > pos; --i) {
    RelaxedStore(arr[i], RelaxedLoad(arr[i - 1]));
  }
}

size_t OlcChildIndex(const OlcBTree::InnerNode* inner, Key key,
                     uint16_t count) {
  size_t lo = 0;
  size_t hi = count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (RelaxedLoad(inner->keys[mid]) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t OlcLeafLowerBound(const Key* keys, size_t n, Key key) {
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (RelaxedLoad(keys[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

namespace {

// Node has no virtual destructor (keeping nodes POD-sized and vtable-free
// matters for cache behaviour), so deleting through the base pointer is
// undefined behaviour — always downcast to the concrete type first.
void DeleteNode(OlcBTree::Node* n) {
  if (n->is_leaf) {
    delete static_cast<OlcBTree::LeafNode*>(n);
  } else {
    delete static_cast<OlcBTree::InnerNode*>(n);
  }
}

}  // namespace

OlcBTree::OlcBTree() { root_.store(new LeafNode()); leaf_nodes_ = 1; }

OlcBTree::~OlcBTree() { Clear(); DeleteNode(root_.load()); }

void OlcBTree::Clear() {
  Node* root = root_.load();
  std::vector<Node*> stack{root};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf) {
      auto* inner = static_cast<InnerNode*>(n);
      for (size_t i = 0; i <= inner->count; ++i) {
        stack.push_back(inner->children[i]);
      }
    }
    if (n != root) DeleteNode(n);
  }
  if (!root->is_leaf) {
    DeleteNode(root);
    root_.store(new LeafNode());
  } else {
    static_cast<LeafNode*>(root)->count = 0;
  }
  height_ = 1;
  leaf_nodes_ = 1;
  inner_nodes_ = 0;
}

void OlcBTree::BulkLoad(std::span<const KeyValue> data) {
  // Single-threaded phase by contract (recovery / initial load).
  Clear();
  if (data.empty()) return;
  DeleteNode(root_.load());

  constexpr size_t kFill = kFanout * 9 / 10;
  std::vector<Node*> level;
  std::vector<Key> level_min;
  LeafNode* prev = nullptr;
  size_t n = data.size();
  size_t num_leaves = (n + kFill - 1) / kFill;
  for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
    size_t begin = leaf * n / num_leaves;
    size_t end = (leaf + 1) * n / num_leaves;
    auto* node = new LeafNode();
    node->count = static_cast<uint16_t>(end - begin);
    for (size_t i = begin; i < end; ++i) {
      node->keys[i - begin] = data[i].key;
      node->values[i - begin] = data[i].value;
    }
    if (prev != nullptr) prev->next.store(node);
    prev = node;
    level.push_back(node);
    level_min.push_back(node->keys[0]);
  }
  leaf_nodes_ = level.size();
  size_t height = 1;
  while (level.size() > 1) {
    std::vector<Node*> parents;
    std::vector<Key> parents_min;
    size_t children_per = kFanout * 9 / 10 + 1;
    size_t m = level.size();
    size_t num_parents = (m + children_per - 1) / children_per;
    for (size_t p = 0; p < num_parents; ++p) {
      size_t begin = p * m / num_parents;
      size_t end = (p + 1) * m / num_parents;
      auto* inner = new InnerNode();
      inner->count = static_cast<uint16_t>(end - begin - 1);
      for (size_t i = begin; i < end; ++i) {
        if (i > begin) inner->keys[i - begin - 1] = level_min[i];
        inner->children[i - begin] = level[i];
      }
      parents.push_back(inner);
      parents_min.push_back(level_min[begin]);
      inner_nodes_.fetch_add(1);
    }
    level = std::move(parents);
    level_min = std::move(parents_min);
    ++height;
  }
  root_.store(level[0]);
  height_ = height;
}

bool OlcBTree::GetOnce(Key key, Value* value, bool* found) const {
  bool ok = false;
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->lock.ReadLock(&ok);
  if (!ok) return false;
  if (root_.load(std::memory_order_acquire) != node) return false;
  while (!node->is_leaf) {
    auto* inner = static_cast<const InnerNode*>(node);
    uint16_t count = RelaxedLoad(inner->count);
    size_t ci = OlcChildIndex(inner, key, count);
    Node* child = AcquireLoad(inner->children[ci]);
    if (!node->lock.Validate(v)) return false;
    uint64_t cv = child->lock.ReadLock(&ok);
    if (!ok) return false;
    if (!node->lock.Validate(v)) return false;
    node = child;
    v = cv;
  }
  const auto* leaf = static_cast<const LeafNode*>(node);
  uint16_t count = RelaxedLoad(leaf->count);
  size_t pos = OlcLeafLowerBound(leaf->keys, count, key);
  bool hit = pos < count && RelaxedLoad(leaf->keys[pos]) == key;
  Value val = hit ? RelaxedLoad(leaf->values[pos]) : 0;
  if (!node->lock.Validate(v)) return false;
  *found = hit;
  if (hit) *value = val;
  return true;
}

bool OlcBTree::Get(Key key, Value* value) const {
  bool found = false;
  while (!GetOnce(key, value, &found)) {
    std::this_thread::yield();
  }
  return found;
}

bool OlcBTree::InsertOnce(Key key, Value value, bool* inserted_new) {
  bool ok = false;
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->lock.ReadLock(&ok);
  if (!ok) return false;
  if (root_.load(std::memory_order_acquire) != node) return false;
  InnerNode* parent = nullptr;
  uint64_t pv = 0;

  while (true) {
    // Eagerly split any full node on the way down so splits never need to
    // propagate upward more than one level.
    if (RelaxedLoad(node->count) == kFanout) {
      if (parent != nullptr) {
        if (!parent->lock.Upgrade(pv)) return false;
        if (!node->lock.Upgrade(v)) {
          parent->lock.WriteUnlock();
          return false;
        }
      } else {
        if (!node->lock.Upgrade(v)) return false;
        if (root_.load(std::memory_order_acquire) != node) {
          node->lock.WriteUnlock();
          return false;
        }
      }

      Key sep;
      Node* right;
      if (node->is_leaf) {
        auto* leaf = static_cast<LeafNode*>(node);
        auto* r = new LeafNode();
        size_t mid = kFanout / 2;
        r->count = static_cast<uint16_t>(kFanout - mid);
        std::copy(leaf->keys + mid, leaf->keys + kFanout, r->keys);
        std::copy(leaf->values + mid, leaf->values + kFanout, r->values);
        RelaxedStore(leaf->count, static_cast<uint16_t>(mid));
        r->next.store(leaf->next.load());
        leaf->next.store(r);
        sep = r->keys[0];
        right = r;
        leaf_nodes_.fetch_add(1);
      } else {
        auto* inner = static_cast<InnerNode*>(node);
        auto* r = new InnerNode();
        size_t mid = kFanout / 2;
        sep = inner->keys[mid];
        r->count = static_cast<uint16_t>(kFanout - mid - 1);
        std::copy(inner->keys + mid + 1, inner->keys + kFanout, r->keys);
        std::copy(inner->children + mid + 1, inner->children + kFanout + 1,
                  r->children);
        RelaxedStore(inner->count, static_cast<uint16_t>(mid));
        right = r;
        inner_nodes_.fetch_add(1);
      }

      if (parent != nullptr) {
        // Parent is not full (it would have been split when visited).
        uint16_t pcount = parent->count;
        size_t pos = OlcChildIndex(parent, sep, pcount);
        RelaxedShiftRight(parent->keys, pos, pcount);
        RelaxedShiftRight(parent->children, pos + 1, pcount + size_t{1});
        RelaxedStore(parent->keys[pos], sep);
        ReleaseStore(parent->children[pos + 1], right);
        RelaxedStore(parent->count, static_cast<uint16_t>(pcount + 1));
        parent->lock.WriteUnlock();
      } else {
        auto* new_root = new InnerNode();
        new_root->count = 1;
        new_root->keys[0] = sep;
        new_root->children[0] = node;
        new_root->children[1] = right;
        root_.store(new_root, std::memory_order_release);
        inner_nodes_.fetch_add(1);
        height_.fetch_add(1);
      }
      node->lock.WriteUnlock();
      return false;  // Restart the descent from the (possibly new) root.
    }

    if (node->is_leaf) {
      if (!node->lock.Upgrade(v)) return false;
      auto* leaf = static_cast<LeafNode*>(node);
      uint16_t lcount = leaf->count;
      size_t pos = OlcLeafLowerBound(leaf->keys, lcount, key);
      if (pos < lcount && leaf->keys[pos] == key) {
        RelaxedStore(leaf->values[pos], value);
        *inserted_new = false;
      } else {
        RelaxedShiftRight(leaf->keys, pos, lcount);
        RelaxedShiftRight(leaf->values, pos, lcount);
        RelaxedStore(leaf->keys[pos], key);
        RelaxedStore(leaf->values[pos], value);
        RelaxedStore(leaf->count, static_cast<uint16_t>(lcount + 1));
        *inserted_new = true;
      }
      node->lock.WriteUnlock();
      return true;
    }

    auto* inner = static_cast<InnerNode*>(node);
    size_t ci = OlcChildIndex(inner, key, RelaxedLoad(inner->count));
    Node* child = AcquireLoad(inner->children[ci]);
    if (!node->lock.Validate(v)) return false;
    uint64_t cv = child->lock.ReadLock(&ok);
    if (!ok) return false;
    if (!node->lock.Validate(v)) return false;
    parent = inner;
    pv = v;
    node = child;
    v = cv;
  }
}

bool OlcBTree::Insert(Key key, Value value) {
  bool inserted_new = false;
  while (!InsertOnce(key, value, &inserted_new)) {
    std::this_thread::yield();
  }
  return true;
}

size_t OlcBTree::Scan(Key from, size_t count, std::vector<KeyValue>* out)
    const {
  if (count == 0) return 0;
  // Optimistic descent to the first leaf, then a validated walk along the
  // leaf chain. Every restart begins again from the caller's `from` with
  // partial output discarded.
  while (true) {
    Key cursor = from;  // Reset on every attempt.
    bool ok = false;
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->lock.ReadLock(&ok);
    if (!ok) continue;
    bool restart = false;
    while (!node->is_leaf) {
      auto* inner = static_cast<const InnerNode*>(node);
      size_t ci = OlcChildIndex(inner, cursor, RelaxedLoad(inner->count));
      Node* child = AcquireLoad(inner->children[ci]);
      if (!node->lock.Validate(v)) {
        restart = true;
        break;
      }
      uint64_t cv = child->lock.ReadLock(&ok);
      if (!ok || !node->lock.Validate(v)) {
        restart = true;
        break;
      }
      node = child;
      v = cv;
    }
    if (restart) continue;

    size_t copied = 0;
    auto* leaf = static_cast<LeafNode*>(node);
    size_t initial = out->size();
    while (leaf != nullptr && copied < count) {
      bool leaf_ok = false;
      uint64_t lv = leaf->lock.ReadLock(&leaf_ok);
      if (!leaf_ok) {
        restart = true;
        break;
      }
      size_t before = out->size();
      uint16_t lcount = RelaxedLoad(leaf->count);
      size_t pos = OlcLeafLowerBound(leaf->keys, lcount, cursor);
      for (; pos < lcount && copied < count; ++pos, ++copied) {
        out->push_back(
            {RelaxedLoad(leaf->keys[pos]), RelaxedLoad(leaf->values[pos])});
      }
      LeafNode* next = leaf->next.load(std::memory_order_acquire);
      if (!leaf->lock.Validate(lv)) {
        out->resize(before);
        restart = true;
        break;
      }
      leaf = next;
      cursor = 0;
    }
    if (restart) {
      out->resize(initial);
      continue;
    }
    return copied;
  }
}

size_t OlcBTree::IndexSizeBytes() const {
  return leaf_nodes_.load() * sizeof(LeafNode) +
         inner_nodes_.load() * sizeof(InnerNode);
}

size_t OlcBTree::TotalSizeBytes() const { return IndexSizeBytes(); }

IndexStats OlcBTree::Stats() const {
  IndexStats s;
  s.leaf_count = leaf_nodes_.load();
  s.inner_count = inner_nodes_.load();
  s.avg_depth = static_cast<double>(height_.load() - 1);
  return s;
}

}  // namespace pieces
