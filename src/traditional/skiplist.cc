#include "traditional/skiplist.h"

#include <cassert>
#include <cstdlib>
#include <new>

namespace pieces {

struct SkipList::Node {
  Key key;
  std::atomic<Value> value;
  int height;
  // Tower of next pointers; allocated inline after the node.
  std::atomic<Node*> next[1];

  Node* Next(int level) const {
    return next[level].load(std::memory_order_acquire);
  }
  void SetNext(int level, Node* n) {
    next[level].store(n, std::memory_order_release);
  }
  bool CasNext(int level, Node* expected, Node* n) {
    return next[level].compare_exchange_strong(expected, n,
                                               std::memory_order_acq_rel);
  }
};

SkipList::Node* SkipList::NewNode(Key key, Value value, int height) {
  size_t bytes =
      sizeof(Node) + sizeof(std::atomic<Node*>) * (static_cast<size_t>(height) - 1);
  void* mem = ::operator new(bytes);
  Node* n = static_cast<Node*>(mem);
  n->key = key;
  n->value.store(value, std::memory_order_relaxed);
  n->height = height;
  for (int i = 0; i < height; ++i) {
    new (&n->next[i]) std::atomic<Node*>(nullptr);
  }
  return n;
}

SkipList::SkipList() {
  head_ = NewNode(0, 0, kMaxHeight);
  node_bytes_ = 0;
}

SkipList::~SkipList() {
  Clear();
  ::operator delete(head_);
}

void SkipList::Clear() {
  Node* n = head_->Next(0);
  while (n != nullptr) {
    Node* next = n->Next(0);
    ::operator delete(n);
    n = next;
  }
  for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  max_height_ = 1;
  size_ = 0;
  node_bytes_ = 0;
}

int SkipList::RandomHeight() {
  // xorshift on a shared atomic; races just add harmless entropy.
  uint64_t x = rnd_.load(std::memory_order_relaxed);
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rnd_.store(x, std::memory_order_relaxed);
  int height = 1;
  // p = 1/4 per extra level.
  while (height < kMaxHeight && ((x >> (2 * height)) & 3) == 0) ++height;
  return height;
}

SkipList::Node* SkipList::FindGreaterOrEqual(Key key, Node** prev) const {
  Node* node = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = node->Next(level);
    if (next != nullptr && next->key < key) {
      node = next;
    } else {
      if (prev != nullptr) prev[level] = node;
      if (level == 0) return next;
      --level;
    }
  }
}

void SkipList::BulkLoad(std::span<const KeyValue> data) {
  Clear();
  for (const KeyValue& kv : data) Insert(kv.key, kv.value);
}

bool SkipList::Get(Key key, Value* value) const {
  Node* n = FindGreaterOrEqual(key, nullptr);
  if (n != nullptr && n->key == key) {
    *value = n->value.load(std::memory_order_acquire);
    return true;
  }
  return false;
}

bool SkipList::Insert(Key key, Value value) {
  Node* prev[kMaxHeight];
  while (true) {
    // Pre-fill with head: FindGreaterOrEqual only fills levels up to the
    // max height it observed, and a racing insert can raise max_height_
    // between the search and the height draw below — the untouched upper
    // prev slots must still be valid splice points.
    for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_;
    Node* found = FindGreaterOrEqual(key, prev);
    if (found != nullptr && found->key == key) {
      found->value.store(value, std::memory_order_release);
      return true;
    }
    int height = RandomHeight();
    int cur_max = max_height_.load(std::memory_order_relaxed);
    while (height > cur_max &&
           !max_height_.compare_exchange_weak(cur_max, height,
                                              std::memory_order_relaxed)) {
      // CAS (rather than a blind store) so concurrent inserts can only
      // raise max_height_, never lower it below a linked tower.
    }
    Node* node = NewNode(key, value, height);
    // Splice bottom-up. Re-locate the exact level-0 predecessor before
    // every CAS attempt, and CAS against the *same* successor pointer the
    // walk examined: re-reading p->Next(0) after the walk opens a window
    // where a racing insert lands a smaller key after p — the CAS would
    // still succeed and link this node *before* it, losing that key to
    // every future search.
    while (true) {
      Node* p = prev[0];
      Node* expected = p->Next(0);
      while (expected != nullptr && expected->key < key) {
        p = expected;
        expected = p->Next(0);
      }
      prev[0] = p;
      if (expected != nullptr && expected->key == key) {
        // Racing duplicate appeared; update it instead.
        expected->value.store(value, std::memory_order_release);
        ::operator delete(node);
        return true;
      }
      node->SetNext(0, expected);
      if (p->CasNext(0, expected, node)) break;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    node_bytes_.fetch_add(
        sizeof(Node) + sizeof(std::atomic<Node*>) *
                           (static_cast<size_t>(height) - 1),
        std::memory_order_relaxed);
    for (int level = 1; level < height; ++level) {
      while (true) {
        // Re-locate the splice point before every attempt and CAS against
        // the successor the walk saw (same lost-key hazard as level 0).
        Node* p = prev[level];
        Node* succ = p->Next(level);
        while (succ != nullptr && succ->key < key) {
          p = succ;
          succ = p->Next(level);
        }
        prev[level] = p;
        if (succ == node) break;  // Another insert already linked us here.
        node->SetNext(level, succ);
        if (p->CasNext(level, succ, node)) break;
      }
    }
    return true;
  }
}

size_t SkipList::Scan(Key from, size_t count, std::vector<KeyValue>* out)
    const {
  Node* n = FindGreaterOrEqual(from, nullptr);
  size_t copied = 0;
  while (n != nullptr && copied < count) {
    out->push_back({n->key, n->value.load(std::memory_order_acquire)});
    ++copied;
    n = n->Next(0);
  }
  return copied;
}

size_t SkipList::IndexSizeBytes() const {
  return node_bytes_.load(std::memory_order_relaxed);
}

size_t SkipList::TotalSizeBytes() const { return IndexSizeBytes(); }

IndexStats SkipList::Stats() const {
  IndexStats s;
  s.leaf_count = size_.load(std::memory_order_relaxed);
  // Expected search depth of a skip list is log_4(n).
  size_t n = s.leaf_count;
  double depth = 0;
  while (n > 1) {
    n /= 4;
    depth += 1;
  }
  s.avg_depth = depth;
  return s;
}

}  // namespace pieces
