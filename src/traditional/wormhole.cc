#include "traditional/wormhole.h"

#include <algorithm>
#include <cassert>

#include "common/search.h"

namespace pieces {

void WormholeLite::RebuildMetaTrie() {
  meta_.assign(kNumLevels, {});
  for (unsigned level = 0; level < kNumLevels; ++level) {
    auto& map = meta_[level];
    for (uint32_t i = 0; i < anchors_.size(); ++i) {
      Key p = Prefix(anchors_[i], level);
      auto [it, inserted] = map.try_emplace(p, Range{i, i});
      if (!inserted) it->second.hi = i;  // Anchors sorted: extend range.
    }
  }
  splits_since_rebuild_ = 0;
}

size_t WormholeLite::RouteLeaf(Key key) const {
  size_t n = anchors_.size();
  if (n <= 1) return 0;

  // Binary search over prefix lengths for the longest anchor prefix of
  // `key` (prefix sets are closed under truncation, so matches form a
  // prefix of the level sequence). Level 0 (empty prefix) always matches.
  unsigned lo_level = 0;
  unsigned hi_level = kNumLevels - 1;
  Range best = {0, static_cast<uint32_t>(n - 1)};
  while (lo_level < hi_level) {
    unsigned mid = (lo_level + hi_level + 1) / 2;
    auto it = meta_[mid].find(Prefix(key, mid));
    if (it != meta_[mid].end()) {
      best = it->second;
      lo_level = mid;
    } else {
      hi_level = mid - 1;
    }
  }

  // The predecessor anchor sits in [best.lo - 1, best.hi] at rebuild
  // time; widen by the splits that have shifted indices since.
  size_t slack = splits_since_rebuild_ + 1;
  size_t lo = best.lo > slack ? best.lo - slack : 0;
  size_t hi = std::min(n, static_cast<size_t>(best.hi) + slack + 1);
  size_t pos = BinarySearchLowerBound(anchors_.data(), lo, hi, key);
  // Repair if the widened window still missed (possible only when the
  // range was maximally stale); correctness never depends on the trie.
  while (pos > 0 && anchors_[pos - 1] >= key) --pos;
  while (pos < n && anchors_[pos] < key) ++pos;
  // pos = first anchor > key (or == key); owner is its predecessor.
  if (pos < n && anchors_[pos] == key) return pos;
  return pos == 0 ? 0 : pos - 1;
}

void WormholeLite::BulkLoad(std::span<const KeyValue> data) {
  anchors_.clear();
  leaves_.clear();
  size_ = data.size();
  constexpr size_t kFill = kLeafCapacity * 3 / 4;
  size_t n = data.size();
  size_t num_leaves = std::max<size_t>(1, (n + kFill - 1) / kFill);
  for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
    size_t begin = leaf * n / num_leaves;
    size_t end = (leaf + 1) * n / num_leaves;
    auto l = std::make_unique<Leaf>();
    l->keys.reserve(kLeafCapacity);
    l->values.reserve(kLeafCapacity);
    for (size_t i = begin; i < end; ++i) {
      l->keys.push_back(data[i].key);
      l->values.push_back(data[i].value);
    }
    anchors_.push_back(l->keys.empty() ? 0 : l->keys.front());
    leaves_.push_back(std::move(l));
  }
  RebuildMetaTrie();
}

bool WormholeLite::Get(Key key, Value* value) const {
  if (leaves_.empty()) return false;
  const Leaf& leaf = *leaves_[RouteLeaf(key)];
  size_t pos = BinarySearchLowerBound(leaf.keys.data(), 0, leaf.keys.size(),
                                      key);
  if (pos < leaf.keys.size() && leaf.keys[pos] == key) {
    *value = leaf.values[pos];
    return true;
  }
  return false;
}

bool WormholeLite::Insert(Key key, Value value) {
  if (leaves_.empty()) {
    BulkLoad(std::vector<KeyValue>{{key, value}});
    return true;
  }
  size_t li = RouteLeaf(key);
  Leaf& leaf = *leaves_[li];
  size_t pos = BinarySearchLowerBound(leaf.keys.data(), 0, leaf.keys.size(),
                                      key);
  if (pos < leaf.keys.size() && leaf.keys[pos] == key) {
    leaf.values[pos] = value;
    return true;
  }
  leaf.keys.insert(leaf.keys.begin() + static_cast<ptrdiff_t>(pos), key);
  leaf.values.insert(leaf.values.begin() + static_cast<ptrdiff_t>(pos),
                     value);
  ++size_;

  if (leaf.keys.size() > kLeafCapacity) {
    // Split in half; the right half becomes a fresh leaf + anchor.
    size_t mid = leaf.keys.size() / 2;
    auto right = std::make_unique<Leaf>();
    right->keys.assign(leaf.keys.begin() + static_cast<ptrdiff_t>(mid),
                       leaf.keys.end());
    right->values.assign(leaf.values.begin() + static_cast<ptrdiff_t>(mid),
                         leaf.values.end());
    leaf.keys.resize(mid);
    leaf.values.resize(mid);
    Key right_anchor = right->keys.front();
    anchors_.insert(anchors_.begin() + static_cast<ptrdiff_t>(li) + 1,
                    right_anchor);
    leaves_.insert(leaves_.begin() + static_cast<ptrdiff_t>(li) + 1,
                   std::move(right));
    // The head leaf can absorb keys below its anchor; refresh it so the
    // anchor array stays a lower bound of each leaf's contents.
    anchors_[li] = leaf.keys.front();
    if (++splits_since_rebuild_ >= kMaxStaleSplits) RebuildMetaTrie();
  } else if (pos == 0) {
    anchors_[li] = std::min(anchors_[li], key);
  }
  return true;
}

size_t WormholeLite::Scan(Key from, size_t count,
                          std::vector<KeyValue>* out) const {
  if (leaves_.empty() || count == 0) return 0;
  size_t copied = 0;
  for (size_t li = RouteLeaf(from); li < leaves_.size() && copied < count;
       ++li) {
    const Leaf& leaf = *leaves_[li];
    size_t pos = BinarySearchLowerBound(leaf.keys.data(), 0,
                                        leaf.keys.size(), from);
    for (; pos < leaf.keys.size() && copied < count; ++pos, ++copied) {
      out->push_back({leaf.keys[pos], leaf.values[pos]});
    }
    from = 0;
  }
  return copied;
}

size_t WormholeLite::IndexSizeBytes() const {
  size_t bytes = anchors_.size() * sizeof(Key) +
                 leaves_.size() * sizeof(Leaf);
  for (const auto& map : meta_) {
    bytes += map.size() * (sizeof(Key) + sizeof(Range) + sizeof(void*));
  }
  return bytes;
}

size_t WormholeLite::TotalSizeBytes() const {
  size_t bytes = IndexSizeBytes();
  for (const auto& leaf : leaves_) {
    bytes += leaf->keys.capacity() * sizeof(Key) +
             leaf->values.capacity() * sizeof(Value);
  }
  return bytes;
}

IndexStats WormholeLite::Stats() const {
  IndexStats s;
  s.leaf_count = leaves_.size();
  s.inner_count = meta_.size();
  // log2 of the prefix-length levels: the hash-jump depth.
  s.avg_depth = 5;  // ceil(log2(kNumLevels)) hash probes + leaf search.
  return s;
}

}  // namespace pieces
