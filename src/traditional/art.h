// An Adaptive Radix Tree (Leis et al., ICDE'13) over 8-byte big-endian
// keys, with Node4/16/48/256 and lazy leaf expansion. This covers the
// paper's trie-structured baseline class (Wormhole's trie component /
// Masstree's trie-of-trees): comparison-free descent, byte-at-a-time.
// Single-writer; concurrent reads are safe when no writer is active.
#ifndef PIECES_TRADITIONAL_ART_H_
#define PIECES_TRADITIONAL_ART_H_

#include <vector>

#include "index/ordered_index.h"

namespace pieces {

class ArtIndex : public OrderedIndex {
 public:
  struct Node;  // Public for internal helpers; opaque to users.

  ArtIndex() = default;
  ~ArtIndex() override;

  ArtIndex(const ArtIndex&) = delete;
  ArtIndex& operator=(const ArtIndex&) = delete;

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "ART"; }

 private:
  void Clear();

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t node_bytes_ = 0;
  size_t node_count_ = 0;
  uint64_t depth_sum_ = 0;  // Sum of leaf depths for Stats().
};

}  // namespace pieces

#endif  // PIECES_TRADITIONAL_ART_H_
