#include "traditional/extendible_hash.h"

#include <atomic>
#include <cassert>

namespace pieces {

namespace {
constexpr size_t kBucketSlots = 4;
constexpr size_t kBucketsPerSegment = 1024;  // 16K slots per segment.
constexpr size_t kProbeBuckets = 2;          // Linear probing distance.
}  // namespace

struct ExtendibleHash::Segment {
  struct Bucket {
    Key keys[kBucketSlots];
    Value values[kBucketSlots];
    uint8_t used = 0;
  };

  explicit Segment(size_t depth) : local_depth(depth) {
    buckets.resize(kBucketsPerSegment);
  }

  size_t local_depth;
  mutable std::shared_mutex mutex;
  std::vector<Bucket> buckets;
  size_t count = 0;

  // Slot lookup within the segment; probes kProbeBuckets buckets.
  bool Find(uint64_t hash, Key key, Value* value) const {
    for (size_t p = 0; p < kProbeBuckets; ++p) {
      const Bucket& b =
          buckets[(hash / kBucketSlots + p) % kBucketsPerSegment];
      for (size_t i = 0; i < b.used; ++i) {
        if (b.keys[i] == key) {
          if (value != nullptr) *value = b.values[i];
          return true;
        }
      }
    }
    return false;
  }

  // Returns false when every probe bucket is full (segment must split).
  bool Put(uint64_t hash, Key key, Value value, bool* inserted) {
    for (size_t p = 0; p < kProbeBuckets; ++p) {
      Bucket& b = buckets[(hash / kBucketSlots + p) % kBucketsPerSegment];
      for (size_t i = 0; i < b.used; ++i) {
        if (b.keys[i] == key) {
          b.values[i] = value;
          *inserted = false;
          return true;
        }
      }
    }
    for (size_t p = 0; p < kProbeBuckets; ++p) {
      Bucket& b = buckets[(hash / kBucketSlots + p) % kBucketsPerSegment];
      if (b.used < kBucketSlots) {
        b.keys[b.used] = key;
        b.values[b.used] = value;
        ++b.used;
        ++count;
        *inserted = true;
        return true;
      }
    }
    return false;
  }
};

uint64_t ExtendibleHash::HashKey(Key key) {
  // MurmurHash3 finalizer.
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ExtendibleHash::ExtendibleHash() { Init(); }

ExtendibleHash::~ExtendibleHash() = default;

void ExtendibleHash::Init() {
  global_depth_ = 1;
  directory_.clear();
  directory_.push_back(std::make_shared<Segment>(1));
  directory_.push_back(std::make_shared<Segment>(1));
}

void ExtendibleHash::BulkLoad(std::span<const KeyValue> data) {
  std::unique_lock dir_lock(dir_mutex_);
  Init();
  dir_lock.unlock();
  for (const KeyValue& kv : data) Insert(kv.key, kv.value);
}

bool ExtendibleHash::Get(Key key, Value* value) const {
  uint64_t hash = HashKey(key);
  std::shared_lock dir_lock(dir_mutex_);
  // Top `global_depth_` bits select the directory entry.
  size_t dir_idx = global_depth_ == 0 ? 0 : hash >> (64 - global_depth_);
  std::shared_ptr<Segment> seg = directory_[dir_idx];
  dir_lock.unlock();
  std::shared_lock seg_lock(seg->mutex);
  return seg->Find(hash, key, value);
}

bool ExtendibleHash::Insert(Key key, Value value) {
  uint64_t hash = HashKey(key);
  while (true) {
    // Lock order is always directory -> segment (SplitSegment follows the
    // same order), so holding the shared directory lock across the segment
    // write is deadlock-free and also pins the segment mapping.
    {
      std::shared_lock dir_lock(dir_mutex_);
      size_t dir_idx = hash >> (64 - global_depth_);
      std::shared_ptr<Segment> seg = directory_[dir_idx];
      std::unique_lock seg_lock(seg->mutex);
      bool inserted = false;
      if (seg->Put(hash, key, value, &inserted)) return true;
    }
    // Segment overflow: split under the directory lock, then retry.
    SplitSegment(hash);
  }
}

void ExtendibleHash::SplitSegment(uint64_t hash) {
  std::unique_lock dir_lock(dir_mutex_);
  size_t dir_idx = hash >> (64 - global_depth_);
  std::shared_ptr<Segment> seg = directory_[dir_idx];
  std::unique_lock seg_lock(seg->mutex);

  if (seg->local_depth == global_depth_) {
    // Double the directory.
    std::vector<std::shared_ptr<Segment>> bigger(directory_.size() * 2);
    for (size_t i = 0; i < directory_.size(); ++i) {
      bigger[2 * i] = directory_[i];
      bigger[2 * i + 1] = directory_[i];
    }
    directory_ = std::move(bigger);
    ++global_depth_;
  }

  // Create two children at local_depth + 1 and rehash entries.
  size_t new_depth = seg->local_depth + 1;
  auto left = std::make_shared<Segment>(new_depth);
  auto right = std::make_shared<Segment>(new_depth);
  for (const Segment::Bucket& b : seg->buckets) {
    for (size_t i = 0; i < b.used; ++i) {
      uint64_t h = HashKey(b.keys[i]);
      // Bit (new_depth-1) from the top decides left vs right.
      Segment* target =
          ((h >> (64 - new_depth)) & 1) ? right.get() : left.get();
      bool inserted = false;
      bool ok = target->Put(h, b.keys[i], b.values[i], &inserted);
      // Rehash into a fresh, half-filled segment cannot overflow in
      // practice; tolerate pathological hash pileups by dropping into the
      // probe chain's last bucket.
      assert(ok);
      (void)ok;
    }
  }
  // Point every directory entry that referenced `seg` at the proper child.
  size_t stride = size_t{1} << (global_depth_ - new_depth);
  for (size_t i = 0; i < directory_.size(); ++i) {
    if (directory_[i] == seg) {
      directory_[i] = ((i / stride) & 1) ? right : left;
    }
  }
}

size_t ExtendibleHash::Scan(Key /*from*/, size_t /*count*/,
                            std::vector<KeyValue>* /*out*/) const {
  return 0;
}

size_t ExtendibleHash::IndexSizeBytes() const {
  std::shared_lock dir_lock(dir_mutex_);
  // Count each distinct segment once (directory entries can share).
  size_t bytes = directory_.size() * sizeof(void*);
  const Segment* prev = nullptr;
  for (const auto& seg : directory_) {
    if (seg.get() != prev) {
      bytes += sizeof(Segment) +
               seg->buckets.size() * sizeof(Segment::Bucket);
      prev = seg.get();
    }
  }
  return bytes;
}

size_t ExtendibleHash::TotalSizeBytes() const { return IndexSizeBytes(); }

IndexStats ExtendibleHash::Stats() const {
  IndexStats s;
  std::shared_lock dir_lock(dir_mutex_);
  const Segment* prev = nullptr;
  for (const auto& seg : directory_) {
    if (seg.get() != prev) {
      ++s.leaf_count;
      prev = seg.get();
    }
  }
  s.avg_depth = 1;  // Directory hop + segment probe.
  return s;
}

}  // namespace pieces
