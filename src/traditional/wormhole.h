// Wormhole-lite (Wu et al., EuroSys'19): an ordered index that replaces
// the B+Tree's inner search with a *hashed longest-prefix-match jump*.
// Leaves are small sorted arrays; their anchor (first) keys are kept in a
// sorted vector; a "meta-trie" of hash sets — one per prefix length —
// maps each anchor prefix to the anchor-index range it covers. A lookup
// binary-searches over prefix *lengths* (O(log W) hash probes, W = 64
// bits) to find the longest anchor prefix of the search key, which pins
// the predecessor anchor to a tiny range. This is the real Wormhole's
// MetaTrieHT specialized to fixed 8-byte keys.
//
// Anchor-index ranges go stale as leaf splits shift indices; lookups
// widen ranges by the number of splits since the last rebuild and the
// meta-trie is rebuilt after a bounded number of splits (amortized O(1)
// per insert). Single-writer; concurrent reads are safe when no writer
// is active.
#ifndef PIECES_TRADITIONAL_WORMHOLE_H_
#define PIECES_TRADITIONAL_WORMHOLE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/ordered_index.h"

namespace pieces {

class WormholeLite : public OrderedIndex {
 public:
  static constexpr size_t kLeafCapacity = 128;
  // Meta-trie prefix lengths: 0, 4, 8, ..., 64 bits.
  static constexpr unsigned kPrefixStep = 4;
  static constexpr unsigned kNumLevels = 64 / kPrefixStep + 1;
  // Rebuild the meta-trie after this many splits.
  static constexpr size_t kMaxStaleSplits = 64;

  WormholeLite() = default;

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "Wormhole"; }

 private:
  struct Leaf {
    std::vector<Key> keys;
    std::vector<Value> values;
  };

  struct Range {
    uint32_t lo;
    uint32_t hi;  // Inclusive anchor-index range at rebuild time.
  };

  static Key Prefix(Key key, unsigned level) {
    unsigned bits = level * kPrefixStep;
    return bits == 0 ? 0 : key >> (64 - bits);
  }

  // Index of the leaf owning `key` via the meta-trie jump.
  size_t RouteLeaf(Key key) const;
  void RebuildMetaTrie();

  std::vector<Key> anchors_;               // Sorted leaf first-keys.
  std::vector<std::unique_ptr<Leaf>> leaves_;  // Parallel to anchors_.
  // meta_[level]: prefix value -> anchor range covered at rebuild time.
  std::vector<std::unordered_map<Key, Range>> meta_;
  size_t splits_since_rebuild_ = 0;
  size_t size_ = 0;
};

}  // namespace pieces

#endif  // PIECES_TRADITIONAL_WORMHOLE_H_
