// An in-memory B+Tree in the STX style: high-fanout nodes sized to a few
// cache lines, leaves linked for scans, bottom-up bulk load. This is the
// paper's primary traditional sorted baseline ("STX B-Tree").
// Single-writer; concurrent reads are safe when no writer is active.
#ifndef PIECES_TRADITIONAL_BTREE_H_
#define PIECES_TRADITIONAL_BTREE_H_

#include <memory>
#include <vector>

#include "index/ordered_index.h"

namespace pieces {

class BTree : public OrderedIndex {
 public:
  // Node types are public so internal helpers can name them; opaque to
  // users of the class.
  struct Node;
  struct LeafNode;
  struct InnerNode;

  // Keys per node. 64 * 8B keys = 8 cache lines, matching STX defaults.
  static constexpr size_t kFanout = 64;

  BTree();
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  bool Insert(Key key, Value value) override;
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  // Finds the largest stored key <= `key` (predecessor query). Used by
  // FITing-tree, which routes keys to the leaf segment whose start key is
  // the predecessor. Returns false when every stored key is > `key`.
  bool FindLessOrEqual(Key key, Key* found_key, Value* value) const;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "BTree"; }

 private:

  void Clear();
  LeafNode* FindLeaf(Key key) const;

  Node* root_ = nullptr;
  size_t height_ = 0;  // 1 = root is a leaf.
  size_t size_ = 0;
  size_t leaf_nodes_ = 0;
  size_t inner_nodes_ = 0;
};

}  // namespace pieces

#endif  // PIECES_TRADITIONAL_BTREE_H_
