#include "traditional/btree.h"

#include <algorithm>
#include <cassert>

#include "common/search.h"

namespace pieces {

struct BTree::Node {
  bool is_leaf;
  uint16_t count = 0;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTree::LeafNode : BTree::Node {
  LeafNode() : Node(true) {}
  Key keys[kFanout];
  Value values[kFanout];
  LeafNode* next = nullptr;
};

struct BTree::InnerNode : BTree::Node {
  InnerNode() : Node(false) {}
  // keys[i] is the smallest key reachable through children[i + 1].
  Key keys[kFanout];
  Node* children[kFanout + 1];
};

namespace {

// First child index to follow for `key` in an inner node.
size_t ChildIndex(const BTree::InnerNode* inner, Key key) {
  const Key* keys = inner->keys;
  size_t lo = 0;
  size_t hi = inner->count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (keys[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BTree::BTree() = default;

BTree::~BTree() { Clear(); }

void BTree::Clear() {
  if (root_ == nullptr) return;
  // Iterative post-order delete via an explicit stack.
  std::vector<Node*> stack{root_};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      delete static_cast<LeafNode*>(n);
    } else {
      auto* inner = static_cast<InnerNode*>(n);
      for (size_t i = 0; i <= inner->count; ++i) {
        stack.push_back(inner->children[i]);
      }
      delete inner;
    }
  }
  root_ = nullptr;
  height_ = 0;
  size_ = 0;
  leaf_nodes_ = 0;
  inner_nodes_ = 0;
}

void BTree::BulkLoad(std::span<const KeyValue> data) {
  Clear();
  // Always materialize a root so Get/Insert need no null checks.
  if (data.empty()) {
    root_ = new LeafNode();
    height_ = 1;
    leaf_nodes_ = 1;
    return;
  }

  // Build leaves at ~90% fill (STX bulk-load default), linked left to right.
  constexpr size_t kFill = kFanout * 9 / 10;
  std::vector<Node*> level;
  std::vector<Key> level_min;  // Smallest key under each node.
  LeafNode* prev = nullptr;
  size_t n = data.size();
  size_t num_leaves = (n + kFill - 1) / kFill;
  for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
    size_t begin = leaf * n / num_leaves;
    size_t end = (leaf + 1) * n / num_leaves;
    auto* node = new LeafNode();
    node->count = static_cast<uint16_t>(end - begin);
    for (size_t i = begin; i < end; ++i) {
      node->keys[i - begin] = data[i].key;
      node->values[i - begin] = data[i].value;
    }
    if (prev != nullptr) prev->next = node;
    prev = node;
    level.push_back(node);
    level_min.push_back(node->keys[0]);
  }
  leaf_nodes_ = level.size();
  height_ = 1;

  // Build inner levels until a single root remains.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    std::vector<Key> parents_min;
    size_t children_per = kFanout * 9 / 10 + 1;
    size_t m = level.size();
    size_t num_parents = (m + children_per - 1) / children_per;
    for (size_t p = 0; p < num_parents; ++p) {
      size_t begin = p * m / num_parents;
      size_t end = (p + 1) * m / num_parents;
      auto* inner = new InnerNode();
      inner->count = static_cast<uint16_t>(end - begin - 1);
      for (size_t i = begin; i < end; ++i) {
        if (i > begin) inner->keys[i - begin - 1] = level_min[i];
        inner->children[i - begin] = level[i];
      }
      parents.push_back(inner);
      parents_min.push_back(level_min[begin]);
      ++inner_nodes_;
    }
    level = std::move(parents);
    level_min = std::move(parents_min);
    ++height_;
  }
  root_ = level[0];
  size_ = n;
}

BTree::LeafNode* BTree::FindLeaf(Key key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    node = inner->children[ChildIndex(inner, key)];
  }
  return static_cast<LeafNode*>(node);
}

bool BTree::Get(Key key, Value* value) const {
  if (root_ == nullptr) return false;
  LeafNode* leaf = FindLeaf(key);
  size_t pos = BinarySearchLowerBound(leaf->keys, 0, leaf->count, key);
  if (pos < leaf->count && leaf->keys[pos] == key) {
    *value = leaf->values[pos];
    return true;
  }
  return false;
}

bool BTree::Insert(Key key, Value value) {
  if (root_ == nullptr) BulkLoad({});

  // Recursive insert that reports a split (new right sibling + separator).
  struct SplitResult {
    Key sep;
    Node* right;
  };
  struct Helper {
    BTree* tree;
    bool updated = false;

    bool InsertRec(Node* node, Key key, Value value, SplitResult* split) {
      if (node->is_leaf) {
        auto* leaf = static_cast<LeafNode*>(node);
        size_t pos = BinarySearchLowerBound(leaf->keys, 0, leaf->count, key);
        if (pos < leaf->count && leaf->keys[pos] == key) {
          leaf->values[pos] = value;  // Upsert.
          updated = true;
          return false;
        }
        if (leaf->count < kFanout) {
          std::copy_backward(leaf->keys + pos, leaf->keys + leaf->count,
                             leaf->keys + leaf->count + 1);
          std::copy_backward(leaf->values + pos, leaf->values + leaf->count,
                             leaf->values + leaf->count + 1);
          leaf->keys[pos] = key;
          leaf->values[pos] = value;
          ++leaf->count;
          return false;
        }
        // Split the leaf in half, then insert into the proper half.
        auto* right = new LeafNode();
        size_t mid = kFanout / 2;
        right->count = static_cast<uint16_t>(kFanout - mid);
        std::copy(leaf->keys + mid, leaf->keys + kFanout, right->keys);
        std::copy(leaf->values + mid, leaf->values + kFanout, right->values);
        leaf->count = static_cast<uint16_t>(mid);
        right->next = leaf->next;
        leaf->next = right;
        ++tree->leaf_nodes_;
        if (key >= right->keys[0]) {
          SplitResult unused;
          InsertRec(right, key, value, &unused);
        } else {
          SplitResult unused;
          InsertRec(leaf, key, value, &unused);
        }
        split->sep = right->keys[0];
        split->right = right;
        return true;
      }

      auto* inner = static_cast<InnerNode*>(node);
      size_t ci = ChildIndex(inner, key);
      SplitResult child_split;
      if (!InsertRec(inner->children[ci], key, value, &child_split)) {
        return false;
      }
      // Insert (sep, right) after position ci.
      if (inner->count < kFanout) {
        std::copy_backward(inner->keys + ci, inner->keys + inner->count,
                           inner->keys + inner->count + 1);
        std::copy_backward(inner->children + ci + 1,
                           inner->children + inner->count + 1,
                           inner->children + inner->count + 2);
        inner->keys[ci] = child_split.sep;
        inner->children[ci + 1] = child_split.right;
        ++inner->count;
        return false;
      }
      // Split the inner node: middle key moves up.
      auto* right = new InnerNode();
      size_t mid = kFanout / 2;
      Key up_key = inner->keys[mid];
      right->count = static_cast<uint16_t>(kFanout - mid - 1);
      std::copy(inner->keys + mid + 1, inner->keys + kFanout, right->keys);
      std::copy(inner->children + mid + 1, inner->children + kFanout + 1,
                right->children);
      inner->count = static_cast<uint16_t>(mid);
      ++tree->inner_nodes_;
      // Now insert the pending separator into the proper half.
      InnerNode* target = child_split.sep < up_key ? inner : right;
      Key sep2 = child_split.sep;
      size_t pos = ChildIndex(target, sep2);
      std::copy_backward(target->keys + pos, target->keys + target->count,
                         target->keys + target->count + 1);
      std::copy_backward(target->children + pos + 1,
                         target->children + target->count + 1,
                         target->children + target->count + 2);
      target->keys[pos] = sep2;
      target->children[pos + 1] = child_split.right;
      ++target->count;
      split->sep = up_key;
      split->right = right;
      return true;
    }
  };

  Helper helper{this};
  SplitResult split;
  if (helper.InsertRec(root_, key, value, &split)) {
    auto* new_root = new InnerNode();
    new_root->count = 1;
    new_root->keys[0] = split.sep;
    new_root->children[0] = root_;
    new_root->children[1] = split.right;
    root_ = new_root;
    ++inner_nodes_;
    ++height_;
  }
  if (!helper.updated) ++size_;
  return true;
}

bool BTree::FindLessOrEqual(Key key, Key* found_key, Value* value) const {
  if (root_ == nullptr || size_ == 0) return false;
  LeafNode* leaf = FindLeaf(key);
  // First position with keys[pos] > key.
  size_t pos = 0;
  size_t hi = leaf->count;
  while (pos < hi) {
    size_t mid = pos + (hi - pos) / 2;
    if (leaf->keys[mid] <= key) {
      pos = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (pos == 0) return false;  // Key is below this leaf's (and tree's) min.
  *found_key = leaf->keys[pos - 1];
  *value = leaf->values[pos - 1];
  return true;
}

size_t BTree::Scan(Key from, size_t count, std::vector<KeyValue>* out) const {
  if (root_ == nullptr || count == 0) return 0;
  const LeafNode* leaf = FindLeaf(from);
  size_t pos = BinarySearchLowerBound(leaf->keys, 0, leaf->count, from);
  size_t copied = 0;
  while (leaf != nullptr && copied < count) {
    for (; pos < leaf->count && copied < count; ++pos, ++copied) {
      out->push_back({leaf->keys[pos], leaf->values[pos]});
    }
    leaf = leaf->next;
    pos = 0;
  }
  return copied;
}

size_t BTree::IndexSizeBytes() const {
  // The whole tree is the index structure (keys live inside the leaves),
  // matching how the paper charges STX B-Tree in Table III.
  return leaf_nodes_ * sizeof(LeafNode) + inner_nodes_ * sizeof(InnerNode);
}

size_t BTree::TotalSizeBytes() const { return IndexSizeBytes(); }

IndexStats BTree::Stats() const {
  IndexStats s;
  s.leaf_count = leaf_nodes_;
  s.inner_count = inner_nodes_;
  s.avg_depth = height_ > 0 ? static_cast<double>(height_ - 1) : 0;
  return s;
}

}  // namespace pieces
