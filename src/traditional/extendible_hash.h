// A CCEH-style extendible hash index (Nam et al., FAST'19): a directory of
// segments, each segment a fixed array of small buckets probed by the hash's
// low bits, with per-segment local depth and lazy directory doubling. The
// paper uses CCEH as the unordered upper-bound reference (the black line in
// Figs. 10/13/15); like CCEH it does not support scans. Per-segment
// reader-writer locks give concurrent reads and writes.
#ifndef PIECES_TRADITIONAL_EXTENDIBLE_HASH_H_
#define PIECES_TRADITIONAL_EXTENDIBLE_HASH_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "index/ordered_index.h"

namespace pieces {

class ExtendibleHash : public OrderedIndex {
 public:
  ExtendibleHash();
  ~ExtendibleHash() override;

  ExtendibleHash(const ExtendibleHash&) = delete;
  ExtendibleHash& operator=(const ExtendibleHash&) = delete;

  void BulkLoad(std::span<const KeyValue> data) override;
  bool Get(Key key, Value* value) const override;
  bool Insert(Key key, Value value) override;
  // Hash indexes do not support ordered scans (Table I); always returns 0.
  size_t Scan(Key from, size_t count,
              std::vector<KeyValue>* out) const override;
  size_t IndexSizeBytes() const override;
  size_t TotalSizeBytes() const override;
  IndexStats Stats() const override;
  std::string_view Name() const override { return "Hash"; }
  bool SupportsScan() const override { return false; }
  bool SupportsConcurrentWrites() const override { return true; }

 private:
  struct Segment;

  static uint64_t HashKey(Key key);
  void Init();
  // Splits the segment currently mapped for `hash`; caller holds no locks.
  void SplitSegment(uint64_t hash);

  mutable std::shared_mutex dir_mutex_;  // Guards directory_ layout.
  std::vector<std::shared_ptr<Segment>> directory_;
  size_t global_depth_ = 0;
};

}  // namespace pieces

#endif  // PIECES_TRADITIONAL_EXTENDIBLE_HASH_H_
