// Replica: a warm standby image of one shard's store. Shipped log records
// are applied through the ordinary StoreBackend::Put path — payload,
// barrier, commit header, barrier, index swing — so the replica's index is
// rebuilt incrementally under the stream and its media image is exactly as
// durable as a primary's. Promotion therefore *is* crash recovery: run the
// store's idempotent Recover() (rebuilding the index from the replica's
// own durable records) and hand the store over; the issue's failover path
// and the crash path share one mechanism.
//
// Thread model: the applier takes the store exclusively per shipped batch;
// watermark-gated client reads take it shared. Most indexes in the
// registry are strictly single-writer, so reads never overlap an apply —
// that exclusion is what lets replica reads work for all 14 families, not
// just the concurrent-writer ones.
#ifndef PIECES_REPLICATION_REPLICA_H_
#define PIECES_REPLICATION_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "replication/replication_log.h"
#include "store/store_backend.h"

namespace pieces::replication {

class Replica {
 public:
  explicit Replica(std::unique_ptr<StoreBackend> store);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Bulk-loads the replica from a *quiesced* primary, preserving stored
  // value bytes, and aligns the applied watermark with `log_start` (the
  // log tail at the moment of the scan — everything before it is covered
  // by the seed image). False on store overflow.
  bool Seed(const StoreBackend& primary, uint64_t log_start);

  // Applies `records` in order through the store's Put path; returns how
  // many applied (fewer only when the replica store is full or closed).
  // Single applier assumed (the session's shipper thread).
  size_t Apply(std::span<const LogRecord> records);

  // Log index one past the last applied record: the watermark replica
  // reads are gated on.
  uint64_t applied() const { return applied_.load(std::memory_order_acquire); }

  // Blocks until applied() >= target, the timeout expires, or the replica
  // is closed/promoted. Returns applied() >= target.
  bool WaitApplied(uint64_t target, uint64_t timeout_us) const;

  // Watermark-gated read body (the gate itself lives in ReplicaSession).
  // Returns found; sets *gone when the store has been released by
  // promotion — the caller must bounce to the (new) primary.
  bool Get(Key key, uint8_t* out, bool* gone) const;

  // Permanently wakes watermark waiters and stops further applies
  // (session teardown / pre-promotion).
  void Close();

  // Failover: recover the store off its own durable media (rebuilding the
  // index exactly as a restarted primary would) and release it to the
  // caller. The replica is closed afterwards.
  std::unique_ptr<StoreBackend> Promote(uint64_t* rebuild_ns);

  // Test/stat access; null after promotion.
  const StoreBackend* store() const { return store_.get(); }

 private:
  std::unique_ptr<StoreBackend> store_;  // null once promoted
  // Applier/promotion exclusive, readers shared.
  mutable std::shared_mutex store_mu_;
  mutable std::mutex wait_mu_;
  mutable std::condition_variable applied_cv_;
  std::atomic<uint64_t> applied_{0};
  bool closed_ = false;  // under wait_mu_
};

}  // namespace pieces::replication

#endif  // PIECES_REPLICATION_REPLICA_H_
