#include "replication/transport.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace pieces::replication {

size_t InProcessTransport::Ship(std::span<const LogRecord> records) {
  const uint64_t delay = delay_us_.load(std::memory_order_relaxed);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  size_t deliver;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !gated_ || down_; });
    if (down_) return 0;
    if (remaining_ < 0) {
      deliver = records.size();
    } else {
      deliver = std::min<size_t>(records.size(),
                                 static_cast<size_t>(remaining_));
      remaining_ -= static_cast<int64_t>(deliver);
      // The fail point trips *after* the capped delivery: a short count
      // below tells the session the link is gone.
      if (remaining_ == 0) down_ = true;
    }
  }
  // Delivery == apply == ack in-process: there is no window where a
  // record is delivered but unapplied, which is what makes the failover
  // sweep's acked-ops oracle exact in both directions.
  return replica_->Apply(records.first(deliver));
}

void InProcessTransport::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    down_ = true;
  }
  cv_.notify_all();
}

void InProcessTransport::FailAfter(uint64_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    remaining_ = static_cast<int64_t>(n);
    if (n == 0) down_ = true;
  }
  cv_.notify_all();
}

void InProcessTransport::SetGated(bool gated) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = gated;
  }
  cv_.notify_all();
}

}  // namespace pieces::replication
