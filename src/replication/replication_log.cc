#include "replication/replication_log.h"

#include <chrono>

namespace pieces::replication {

namespace {

// Per-thread record of the last append: the exact watermark for a
// semi-sync ack await issued by the committing thread itself. Tagged with
// the log instance so a thread serving several shards never waits on
// another shard's position.
struct ThreadAppend {
  const ReplicationLog* log = nullptr;
  uint64_t next = 0;  // log index one past the appended record
};
thread_local ThreadAppend tl_append;

}  // namespace

void ReplicationLog::OnCommit(const CommitRecord& record) {
  LogRecord rec;
  rec.primary_seqno = record.seqno;
  rec.key = record.key;
  rec.value.assign(record.value, record.value + record.value_size);
  uint64_t next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(rec));
    next = base_ + records_.size();
    tail_.store(next, std::memory_order_release);
  }
  grew_.notify_all();
  tl_append.log = this;
  tl_append.next = next;
}

size_t ReplicationLog::Read(uint64_t from, size_t max,
                            std::vector<LogRecord>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from < base_) from = base_;
  const uint64_t end = base_ + records_.size();
  size_t n = 0;
  for (uint64_t i = from; i < end && n < max; ++i, ++n) {
    out->push_back(records_[i - base_]);
  }
  return n;
}

void ReplicationLog::TruncateTo(uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  while (base_ < upto && !records_.empty()) {
    records_.pop_front();
    ++base_;
  }
}

bool ReplicationLog::WaitTail(uint64_t beyond, uint64_t timeout_us) const {
  std::unique_lock<std::mutex> lock(mu_);
  grew_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
    return closed_ || base_ + records_.size() > beyond;
  });
  return base_ + records_.size() > beyond;
}

void ReplicationLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  grew_.notify_all();
}

bool ReplicationLog::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t ReplicationLog::ThisThreadWatermark() const {
  if (tl_append.log == this && tl_append.next > 0) return tl_append.next;
  return tail();
}

}  // namespace pieces::replication
