#include "replication/replica.h"

#include <chrono>
#include <utility>

#include "store/record_format.h"

namespace pieces::replication {

Replica::Replica(std::unique_ptr<StoreBackend> store)
    : store_(std::move(store)) {}

bool Replica::Seed(const StoreBackend& primary, uint64_t log_start) {
  std::vector<Key> keys;
  primary.Scan(0, primary.size(), &keys);
  std::unique_lock<std::shared_mutex> lock(store_mu_);
  if (store_ == nullptr) return false;
  const size_t value_size = store_->value_size();
  bool ok = store_->BulkLoad(keys, [&](Key key, uint8_t* buf) {
    // Preserve the primary's stored bytes; a key that vanished mid-scan
    // cannot happen on a quiesced primary, but fall back deterministically
    // rather than leaving the buffer unwritten.
    if (!primary.Get(key, buf)) {
      FillSyntheticRecordValue(key, buf, value_size);
    }
  });
  if (!ok) return false;
  {
    std::lock_guard<std::mutex> wlock(wait_mu_);
    applied_.store(log_start, std::memory_order_release);
  }
  applied_cv_.notify_all();
  return true;
}

size_t Replica::Apply(std::span<const LogRecord> records) {
  size_t n = 0;
  {
    std::unique_lock<std::shared_mutex> lock(store_mu_);
    if (store_ == nullptr) return 0;
    for (const LogRecord& rec : records) {
      if (!store_->Put(rec.key, rec.value.data())) break;
      ++n;
    }
  }
  if (n > 0) {
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
      applied_.fetch_add(n, std::memory_order_release);
    }
    applied_cv_.notify_all();
  }
  return n;
}

bool Replica::WaitApplied(uint64_t target, uint64_t timeout_us) const {
  if (applied() >= target) return true;
  std::unique_lock<std::mutex> lock(wait_mu_);
  applied_cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
    return closed_ || applied_.load(std::memory_order_acquire) >= target;
  });
  return applied_.load(std::memory_order_acquire) >= target;
}

bool Replica::Get(Key key, uint8_t* out, bool* gone) const {
  std::shared_lock<std::shared_mutex> lock(store_mu_);
  if (store_ == nullptr) {
    *gone = true;
    return false;
  }
  *gone = false;
  return store_->Get(key, out);
}

void Replica::Close() {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    closed_ = true;
  }
  applied_cv_.notify_all();
}

std::unique_ptr<StoreBackend> Replica::Promote(uint64_t* rebuild_ns) {
  Close();
  std::unique_lock<std::shared_mutex> lock(store_mu_);
  if (store_ == nullptr) return nullptr;
  // The replica's store is durable in its own right (every apply ran the
  // full commit protocol), so recovery off its media is exactly the
  // restarted-primary path — the index rebuild cost is the outage's
  // index-dependent component.
  const uint64_t ns = store_->Recover();
  if (rebuild_ns != nullptr) *rebuild_ns = ns;
  return std::move(store_);
}

}  // namespace pieces::replication
