#include "replication/replica_session.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace pieces::replication {

ReplicaSession::ReplicaSession(std::unique_ptr<StoreBackend> replica_store,
                               const ReplicationConfig& config)
    : config_(config),
      log_(std::make_shared<ReplicationLog>()),
      replica_(std::move(replica_store)),
      transport_(&replica_) {
  transport_.SetDelayUs(config_.transport_delay_us);
}

ReplicaSession::~ReplicaSession() { Stop(); }

bool ReplicaSession::SeedFromPrimary(const StoreBackend& primary) {
  const uint64_t start = log_->tail();
  if (!replica_.Seed(primary, start)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  acked_ = start;
  return true;
}

void ReplicaSession::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  shipper_ = std::thread(&ReplicaSession::ShipLoop, this);
}

void ReplicaSession::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  acked_cv_.notify_all();
  log_->Close();          // wake the shipper's WaitTail
  transport_.Shutdown();  // release a gated/blocked Ship
  replica_.Close();       // wake watermark-gated readers
  if (shipper_.joinable()) shipper_.join();
}

void ReplicaSession::ShipLoop() {
  std::vector<LogRecord> batch;
  for (;;) {
    uint64_t next;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_ || dead_) return;
      next = acked_;
    }
    if (!log_->WaitTail(next, config_.ship_interval_us)) {
      if (log_->closed()) return;
      continue;  // idle tick: re-check stopping_
    }
    batch.clear();
    log_->Read(next, std::max<size_t>(1, config_.ship_batch), &batch);
    if (batch.empty()) continue;
    const size_t delivered =
        transport_.Ship({batch.data(), batch.size()});
    bool died = delivered < batch.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      acked_ += delivered;
      if (died) dead_ = true;
      next = acked_;
    }
    acked_cv_.notify_all();
    if (died) return;
    batches_.fetch_add(1, std::memory_order_relaxed);
    // The applied prefix will never be re-shipped; keep the DRAM log
    // bounded by the lag, not the write history.
    log_->TruncateTo(next);
  }
}

bool ReplicaSession::WaitCaughtUp(uint64_t timeout_us) {
  const uint64_t target = log_->tail();
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_) return acked_ >= target;
  auto done = [&] { return acked_ >= target || dead_ || stopping_; };
  if (timeout_us == 0) {
    acked_cv_.wait(lock, done);
  } else {
    acked_cv_.wait_for(lock, std::chrono::microseconds(timeout_us), done);
  }
  return acked_ >= target;
}

bool ReplicaSession::AwaitReplicated() {
  // The exact watermark for the calling thread's own write: waiting on
  // the global tail instead would entangle this ack with concurrent
  // writers' records and make "acked ⇒ on the replica" one-directional.
  const uint64_t target = log_->ThisThreadWatermark();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(config_.ack_timeout_us);
  std::unique_lock<std::mutex> lock(mu_);
  while (acked_ < target) {
    if (dead_ || stopping_) break;
    if (acked_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        acked_ < target) {
      break;
    }
  }
  if (acked_ >= target) return true;
  ack_failures_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool ReplicaSession::TryRead(Key key, uint8_t* out, bool* found) {
  if (config_.reads == ReplicationConfig::ReadPolicy::kOff) return false;
  const uint64_t watermark = log_->tail();
  if (replica_.applied() < watermark) {
    bool caught_up = false;
    if (config_.reads == ReplicationConfig::ReadPolicy::kWait) {
      waits_.fetch_add(1, std::memory_order_relaxed);
      caught_up =
          replica_.WaitApplied(watermark, config_.read_wait_timeout_us);
    }
    if (!caught_up) {
      bounces_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  bool gone = false;
  const bool hit = replica_.Get(key, out, &gone);
  if (gone) {
    // Promoted away mid-read: the store this replica was shadowing is
    // being replaced; the re-route protocol takes it from here.
    bounces_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *found = hit;
  reads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::unique_ptr<StoreBackend> ReplicaSession::Promote(uint64_t* rebuild_ns) {
  Stop();
  return replica_.Promote(rebuild_ns);
}

bool ReplicaSession::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

ReplicaSessionStats ReplicaSession::Stats() const {
  ReplicaSessionStats s;
  s.log_tail = log_->tail();
  s.applied = replica_.applied();
  s.lag = s.log_tail > s.applied ? s.log_tail - s.applied : 0;
  s.batches_shipped = batches_.load(std::memory_order_relaxed);
  s.replica_reads = reads_.load(std::memory_order_relaxed);
  s.replica_waits = waits_.load(std::memory_order_relaxed);
  s.replica_bounces = bounces_.load(std::memory_order_relaxed);
  s.ack_failures = ack_failures_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.acked = acked_;
  s.dead = dead_;
  return s;
}

}  // namespace pieces::replication
