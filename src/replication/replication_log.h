// ReplicationLog: the per-shard redo stream behind primary→replica log
// shipping. It is a CommitTap installed on the primary store, so every
// committed put lands here (seqno + key + value bytes) *before* the
// client's acknowledgement — the property the read-your-writes watermark
// and replication-synchronous acks are built on.
//
// Positions in the log are *log indexes* (0-based append order; tail() is
// one past the last appended record), not primary seqnos: seqnos from
// concurrent writers may arrive interleaved, while per-key order matches
// per-key commit order (the tap contract). Each record still carries its
// primary seqno for transports that want to dedup or resume.
//
// Shipped-and-applied prefixes are truncated (TruncateTo) so the in-DRAM
// log stays bounded by the replication lag, not the write history.
#ifndef PIECES_REPLICATION_REPLICATION_LOG_H_
#define PIECES_REPLICATION_REPLICATION_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "store/store_backend.h"

namespace pieces::replication {

// One committed primary record, framed for shipping. The value is copied
// out of the commit path (the store's buffer is only valid in-call).
struct LogRecord {
  uint64_t primary_seqno = 0;
  Key key = 0;
  std::vector<uint8_t> value;
};

class ReplicationLog : public CommitTap {
 public:
  ReplicationLog() = default;

  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  // CommitTap: append the record and wake the shipper. Called from any
  // writer thread, before that writer's put is acked.
  void OnCommit(const CommitRecord& record) override;

  // One past the last appended record's log index.
  uint64_t tail() const { return tail_.load(std::memory_order_acquire); }

  // Copies up to `max` records starting at log index `from` into `out`
  // (appended); returns how many were copied. `from` below the truncation
  // point snaps up to it.
  size_t Read(uint64_t from, size_t max, std::vector<LogRecord>* out) const;

  // Drops records below log index `upto` (they are shipped and applied).
  void TruncateTo(uint64_t upto);

  // Blocks until tail() > `beyond`, the timeout expires, or the log is
  // closed. Returns tail() > beyond.
  bool WaitTail(uint64_t beyond, uint64_t timeout_us) const;

  // Wakes every waiter permanently (session teardown). Appends after
  // Close are still recorded — a racing writer's tap must not be lost —
  // but nothing will ship them.
  void Close();
  bool closed() const;

  // The log index one past the record this thread most recently appended
  // to *this* log, i.e. the watermark that covers exactly that write.
  // Falls back to tail() (a conservative, larger watermark) when the
  // calling thread has not appended here — the caller of a semi-sync
  // await is the thread that just committed the put, so the exact path is
  // the common one.
  uint64_t ThisThreadWatermark() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable grew_;
  std::deque<LogRecord> records_;  // records_[i] has log index base_ + i
  uint64_t base_ = 0;
  bool closed_ = false;
  std::atomic<uint64_t> tail_{0};
};

}  // namespace pieces::replication

#endif  // PIECES_REPLICATION_REPLICATION_LOG_H_
