// ReplicationTransport: the seam between a primary's shipper thread and
// its replica. The interface is deliberately the shape of a socket — ship
// an ordered batch, learn how much of it arrived — so a networked
// transport can slot in without touching the log, the replica, or the
// session. The in-process implementation applies batches directly and
// doubles as the failure-injection surface for the failover tests:
//
//   * FailAfter(n)  — deliver exactly n more records, then the link dies.
//     Sweeping n over every record count kills the primary at every
//     shipped-batch boundary AND every mid-batch offset, deterministically
//     regardless of how records happened to batch at runtime.
//   * SetGated(true) — hold deliveries (an unbounded network stall) so
//     read-your-writes tests can pin the replica behind the watermark.
//   * SetDelayUs(d) — per-batch latency (a network round trip) for the
//     replication-lag experiment.
#ifndef PIECES_REPLICATION_TRANSPORT_H_
#define PIECES_REPLICATION_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>

#include "replication/replica.h"
#include "replication/replication_log.h"

namespace pieces::replication {

class ReplicationTransport {
 public:
  virtual ~ReplicationTransport() = default;

  // Ships `records` in order; returns how many were delivered *and*
  // applied. A short count means the link (or the peer) died mid-batch:
  // the session must stop shipping and mark itself dead.
  virtual size_t Ship(std::span<const LogRecord> records) = 0;

  // Tears the link down, releasing any blocked Ship. Idempotent.
  virtual void Shutdown() = 0;
};

class InProcessTransport final : public ReplicationTransport {
 public:
  explicit InProcessTransport(Replica* replica) : replica_(replica) {}

  size_t Ship(std::span<const LogRecord> records) override;
  void Shutdown() override;

  // Delivers exactly `n` more records, then fails the link permanently —
  // the offset-sweep kill switch.
  void FailAfter(uint64_t n);
  // Holds (true) or releases (false) all deliveries.
  void SetGated(bool gated);
  // Injected per-batch delivery latency.
  void SetDelayUs(uint64_t us) {
    delay_us_.store(us, std::memory_order_relaxed);
  }

 private:
  Replica* const replica_;
  std::atomic<uint64_t> delay_us_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool gated_ = false;
  bool down_ = false;
  int64_t remaining_ = -1;  // records until the fail point trips; -1 = off
};

}  // namespace pieces::replication

#endif  // PIECES_REPLICATION_TRANSPORT_H_
