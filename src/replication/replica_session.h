// ReplicaSession: one primary→replica replication link for one shard.
// Owns the ReplicationLog (installed as the primary store's CommitTap),
// the shipper thread that drains it in batches through a
// ReplicationTransport, and the Replica that applies the stream. The
// service layer (service/router.cc) holds one session per shard next to
// the shard itself in the routing snapshot.
//
// Watermarks (all log indexes, see replication_log.h):
//   tail     — records committed on the primary (acked or about to be).
//   acked    — records delivered-and-applied, confirmed back to the
//              session; with the in-process transport acked == applied.
//   applied  — records the replica has run through its Put path.
//
// Read-your-writes: a client's Put returns only after its record entered
// the log, so a replica read taken at watermark `tail` (or the reader's
// own ThisThreadWatermark) sees every write the client was acked — the
// session serves the read only when applied >= watermark, else waits
// (ReadPolicy::kWait, bounded) or bounces the read to the primary
// (kBounce). Waits happen on submitting/client threads only, never on a
// shard worker, and the applier that advances the watermark is the
// independent shipper thread — so a watermark wait can never deadlock
// against request execution (see DESIGN.md "Replication & failover").
//
// Semi-sync acks (AckMode::kReplicated): the shard worker awaits
// AwaitReplicated() after a locally durable write; kOk then means "on the
// replica too", and a dead/stalled link degrades the write to kRetry
// instead of blocking forever.
#ifndef PIECES_REPLICATION_REPLICA_SESSION_H_
#define PIECES_REPLICATION_REPLICA_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "replication/replica.h"
#include "replication/replication_log.h"
#include "replication/transport.h"
#include "store/store_backend.h"

namespace pieces::replication {

struct ReplicationConfig {
  bool enabled = false;

  // What a write's kOk means.
  enum class AckMode : uint8_t {
    kLocal,       // durable on the primary (replication is async)
    kReplicated,  // durable on the primary AND applied on the replica
  };
  AckMode ack = AckMode::kLocal;

  // Whether point reads may be served by replicas.
  enum class ReadPolicy : uint8_t {
    kOff,     // all reads on the primary
    kBounce,  // replica serves iff caught up to the watermark, else the
              // read bounces back to the primary immediately
    kWait,    // behind-watermark reads wait (bounded) for catch-up, then
              // bounce if still behind
  };
  ReadPolicy reads = ReadPolicy::kOff;

  // Shipper batching: at most ship_batch records per transport call; an
  // idle shipper re-checks for work every ship_interval_us.
  size_t ship_batch = 64;
  uint64_t ship_interval_us = 200;
  // kWait read gate bound before the read bounces to the primary.
  uint64_t read_wait_timeout_us = 2000;
  // kReplicated ack bound before a locally durable write degrades to
  // kRetry.
  uint64_t ack_timeout_us = 100000;
  // Injected transport latency per shipped batch (models the network
  // round trip; the lag experiment sweeps it).
  uint64_t transport_delay_us = 0;
};

struct ReplicaSessionStats {
  uint64_t log_tail = 0;
  uint64_t acked = 0;
  uint64_t applied = 0;
  uint64_t lag = 0;  // tail - applied at sample time
  uint64_t batches_shipped = 0;
  uint64_t replica_reads = 0;    // reads served by the replica
  uint64_t replica_waits = 0;    // served reads that waited at the gate
  uint64_t replica_bounces = 0;  // reads bounced to the primary
  uint64_t ack_failures = 0;     // semi-sync awaits that timed out/died
  bool dead = false;
};

class ReplicaSession {
 public:
  ReplicaSession(std::unique_ptr<StoreBackend> replica_store,
                 const ReplicationConfig& config);
  ~ReplicaSession();  // Stop()

  ReplicaSession(const ReplicaSession&) = delete;
  ReplicaSession& operator=(const ReplicaSession&) = delete;

  // The tap to install on the primary store (StoreBackend::SetCommitTap).
  std::shared_ptr<ReplicationLog> log() const { return log_; }

  // Bulk-seeds the replica from the *quiesced* primary (no concurrent
  // writers during the call) and fast-forwards the watermarks over the
  // seeded image. Call after the primary's bulk load, before Start.
  bool SeedFromPrimary(const StoreBackend& primary);

  // Spawns / joins the shipper. Start after seeding; Stop is idempotent
  // and wakes every watermark and ack waiter.
  void Start();
  void Stop();

  // Blocks until everything in the log as of the call is shipped and
  // applied (or the link dies / the session stops / `timeout_us` elapses;
  // 0 waits without bound). True when caught up.
  bool WaitCaughtUp(uint64_t timeout_us = 0);

  // Semi-sync ack: blocks until the calling thread's latest tapped write
  // is applied on the replica (ack_timeout_us bound). Call from the
  // thread that committed the put — the per-thread watermark makes the
  // await exact: true iff that record was delivered.
  bool AwaitReplicated();

  // Watermark-gated replica read. True = the read was served here (sets
  // *found / fills `out` on a hit); false = the caller must read the
  // primary (gate not met under kBounce, wait timed out, reads off, or
  // the replica was promoted away).
  bool TryRead(Key key, uint8_t* out, bool* found);

  // Failover: stop shipping, recover the replica store off its own
  // durable media, release it for the caller to wrap in a new primary
  // shard. Records past the applied watermark are lost — ship the tail
  // first (WaitCaughtUp) for a planned, lossless switchover.
  std::unique_ptr<StoreBackend> Promote(uint64_t* rebuild_ns);

  bool dead() const;
  ReplicaSessionStats Stats() const;
  const ReplicationConfig& config() const { return config_; }
  // Test access: fail-point/gate injection and replica inspection.
  InProcessTransport* transport() { return &transport_; }
  Replica* replica() { return &replica_; }

 private:
  void ShipLoop();

  const ReplicationConfig config_;
  std::shared_ptr<ReplicationLog> log_;
  Replica replica_;
  InProcessTransport transport_;

  mutable std::mutex mu_;
  std::condition_variable acked_cv_;
  uint64_t acked_ = 0;  // delivered-and-applied log prefix
  bool dead_ = false;
  bool stopping_ = false;
  bool started_ = false;
  std::thread shipper_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> bounces_{0};
  std::atomic<uint64_t> ack_failures_{0};
};

}  // namespace pieces::replication

#endif  // PIECES_REPLICATION_REPLICA_SESSION_H_
