// Fig. 11: read-only performance on the FACE(-like) skewed key set.
// Paper finding: RS collapses because almost every key shares the same
// r-bit prefix (its radix table stops discriminating), while the other
// learned indexes keep their ordering.
#include <cstdio>

#include "bench/bench_util.h"
#include "learned/radix_spline.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 11: FACE-like skew",
              "RS degrades sharply (radix prefix useless under skew); "
              "other learned indexes hold up");
  const size_t n = BaseKeys();
  const size_t ops_n = 200'000;
  for (const char* ds : {"ycsb", "face"}) {
    std::vector<Key> keys = MakeKeys(ds, n, 17);
    auto ops = GenerateOps(WorkloadSpec::ReadOnly(), ops_n, keys, {});
    std::printf("\n-- dataset %s --\n", ds);
    for (const char* name :
         {"RS", "RMI", "PGM", "ALEX", "FITing-tree-buf", "BTree"}) {
      auto store = MakeStore(name, keys);
      if (store == nullptr) continue;
      RunResult r = RunStoreOps(store.get(), ops);
      PrintRow(name, r.mops, r.latency.P50(), r.latency.P999());
    }
    // Show the mechanism: spline points per used radix cell.
    RadixSpline rs(18, 32);
    std::vector<KeyValue> data;
    for (Key k : keys) data.push_back({k, k});
    rs.BulkLoad(data);
    std::printf("RS radix-table degeneracy: %.1f spline points per used "
                "cell (%zu spline points total)\n",
                rs.AvgSplinePointsPerUsedCell(), rs.Stats().leaf_count + 1);
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
