// Fig. 11: read-only performance on the FACE(-like) skewed key set.
// Paper finding: RS collapses because almost every key shares the same
// r-bit prefix (its radix table stops discriminating), while the other
// learned indexes keep their ordering.
#include "bench/bench_util.h"
#include "learned/radix_spline.h"

namespace pieces::bench {
namespace {

void RunFig11(Context& ctx) {
  const size_t n = ctx.base_keys;
  for (const char* ds : {"ycsb", "face"}) {
    std::vector<Key> keys = MakeKeys(ds, n, 17);
    auto ops = GenerateOps(WorkloadSpec::ReadOnly(), ctx.ops, keys, {});
    ctx.sink.Section(std::string("dataset ") + ds);
    for (const char* name :
         {"RS", "RMI", "PGM", "ALEX", "FITing-tree-buf", "BTree"}) {
      auto store = MakeStore(ctx, name, keys);
      if (store == nullptr) continue;
      RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx));
      ctx.sink.Add(ThroughputRow(name, r).Label("dataset", ds));
    }
    // Show the mechanism: spline points per used radix cell.
    RadixSpline rs(18, 32);
    std::vector<KeyValue> data;
    for (Key k : keys) data.push_back({k, k});
    rs.BulkLoad(data);
    ctx.sink.Add(
        ResultRow("RS-radix-degeneracy")
            .Label("dataset", ds)
            .Metric("spline_pts_per_used_cell", rs.AvgSplinePointsPerUsedCell())
            .Metric("spline_points",
                    static_cast<double>(rs.Stats().leaf_count + 1)));
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig11, "fig11", "Fig. 11", "Fig. 11: FACE-like skew",
    "RS degrades sharply (radix prefix useless under skew); other learned "
    "indexes hold up",
    RunFig11)

}  // namespace
}  // namespace pieces::bench
