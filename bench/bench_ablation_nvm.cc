// Ablation: the paper's motivating environment question — "under the drag
// of slower hardware such as NVM, does the learned index's advantage
// survive, i.e. is the bottleneck the medium or the index?" We sweep the
// injected NVM latency from 0 (pure DRAM) upward and watch the relative
// gap between the fastest learned index, the B+Tree and the hash index
// compress as the medium dominates.
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunAblationNvm(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  auto ops = GenerateOps(WorkloadSpec::ReadOnly(),
                         std::max<size_t>(1, ctx.ops / 2), keys, {});

  for (uint64_t latency : {0ull, 200ull, 500ull, 1000ull, 3000ull}) {
    ctx.sink.Section("nvm latency " + std::to_string(latency) + " ns");
    double mops[3] = {0, 0, 0};
    int i = 0;
    for (const char* name : {"ALEX", "BTree", "Hash"}) {
      ViperStore::Config cfg;
      cfg.value_size = 200;
      cfg.pmem_capacity = keys.size() * 208 * 4 + (64 << 20);
      cfg.read_latency_ns = latency;
      cfg.write_latency_ns = latency;
      ViperStore store(MakeIndex(name), cfg);
      if (!store.BulkLoad(keys)) {
        ctx.sink.Add(ResultRow(name)
                         .Status("bulk_load_failed")
                         .Label("nvm_ns", std::to_string(latency)));
        ++i;
        continue;
      }
      RunStats r = RunStoreOps(&store, ops, ExecOptions(ctx));
      mops[i++] = r.mops;
      ctx.sink.Add(ResultRow(name)
                       .Label("nvm_ns", std::to_string(latency))
                       .Metric("mops", r.mops));
    }
    if (mops[1] > 0) {
      ctx.sink.Add(ResultRow("ALEX/BTree")
                       .Label("nvm_ns", std::to_string(latency))
                       .Metric("ratio", mops[0] / mops[1]));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    ablation_nvm, "ablation_nvm", "§III-A2",
    "Ablation: NVM latency sensitivity",
    "as the medium slows, index differences compress — but the ordering "
    "(learned > tree) survives (the paper's Viper finding)",
    RunAblationNvm)

}  // namespace
}  // namespace pieces::bench
