// Ablation: the paper's motivating environment question — "under the drag
// of slower hardware such as NVM, does the learned index's advantage
// survive, i.e. is the bottleneck the medium or the index?" We sweep the
// injected NVM latency from 0 (pure DRAM) upward and watch the relative
// gap between the fastest learned index, the B+Tree and the hash index
// compress as the medium dominates.
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Ablation: NVM latency sensitivity",
              "as the medium slows, index differences compress — but the "
              "ordering (learned > tree) survives (the paper's Viper "
              "finding)");
  const size_t n = BaseKeys();
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  auto ops = GenerateOps(WorkloadSpec::ReadOnly(), 100'000, keys, {});

  std::printf("%-12s %12s %12s %12s %14s\n", "nvm-ns", "ALEX", "BTree",
              "Hash", "ALEX/BTree");
  for (uint64_t latency : {0ull, 200ull, 500ull, 1000ull, 3000ull}) {
    double mops[3];
    int i = 0;
    for (const char* name : {"ALEX", "BTree", "Hash"}) {
      ViperStore::Config cfg;
      cfg.value_size = 200;
      cfg.pmem_capacity = keys.size() * 208 * 4 + (64 << 20);
      cfg.read_latency_ns = latency;
      cfg.write_latency_ns = latency;
      ViperStore store(MakeIndex(name), cfg);
      if (!store.BulkLoad(keys)) return;
      mops[i++] = RunStoreOps(&store, ops).mops;
    }
    std::printf("%-12llu %12.3f %12.3f %12.3f %14.2f\n",
                static_cast<unsigned long long>(latency), mops[0], mops[1],
                mops[2], mops[0] / mops[1]);
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
