// Table III: space overhead of each index in the three deployment
// scenarios — index structure only, index+keys, index+KV. Paper finding:
// learned index structures are 3-5 orders of magnitude smaller than
// traditional ones, but the advantage vanishes once keys (let alone
// values) are charged.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

std::string Human(size_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / (1ull << 10));
  }
  return buf;
}

void RunTable3(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> keys = MakeUniformKeys(n, 17);
  for (const std::string& name : AllIndexNames()) {
    auto store = MakeStore(ctx, name, keys);
    if (store == nullptr) continue;
    size_t index_bytes = store->IndexStructureBytes();
    size_t index_key_bytes = store->IndexPlusKeyBytes();
    size_t index_kv_bytes = store->IndexPlusKvBytes();
    ctx.sink.Add(ResultRow(name)
                     .Label("index_size", Human(index_bytes))
                     .Label("index_key_size", Human(index_key_bytes))
                     .Label("index_kv_size", Human(index_kv_bytes))
                     .Metric("index_bytes", static_cast<double>(index_bytes))
                     .Metric("index_key_bytes",
                             static_cast<double>(index_key_bytes))
                     .Metric("index_kv_bytes",
                             static_cast<double>(index_kv_bytes)));
  }
}

PIECES_REGISTER_EXPERIMENT(
    table3, "table3", "Table III",
    "Table III: space overhead (index / index+key / index+KV)",
    "learned index structures are orders of magnitude smaller than "
    "BTree/Hash, but index+key and index+KV sizes converge",
    RunTable3)

}  // namespace
}  // namespace pieces::bench
