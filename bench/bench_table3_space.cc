// Table III: space overhead of each index in the three deployment
// scenarios — index structure only, index+keys, index+KV. Paper finding:
// learned index structures are 3-5 orders of magnitude smaller than
// traditional ones, but the advantage vanishes once keys (let alone
// values) are charged.
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

std::string Human(size_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / (1ull << 10));
  }
  return buf;
}

void Run() {
  PrintHeader("Table III: space overhead (index / index+key / index+KV)",
              "learned index structures are orders of magnitude smaller "
              "than BTree/Hash, but index+key and index+KV sizes converge");
  const size_t n = BaseKeys();
  std::vector<Key> keys = MakeUniformKeys(n, 17);
  std::printf("%-18s %12s %16s %14s\n", "index", "index-size",
              "index+key-size", "index+KV-size");
  for (const std::string& name : AllIndexNames()) {
    auto store = MakeStore(name, keys);
    if (store == nullptr) continue;
    std::printf("%-18s %12s %16s %14s\n", name.c_str(),
                Human(store->IndexStructureBytes()).c_str(),
                Human(store->IndexPlusKeyBytes()).c_str(),
                Human(store->IndexPlusKvBytes()).c_str());
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
