// Batched lookup fast path: multi-get through the index (stage-interleaved
// predict + prefetch + SIMD last-mile resolve) vs the single-key Get loop,
// swept over batch size x index x dataset x terminal kernel. A second
// section runs the same comparison end-to-end through ViperStore with
// injected PMem read latency, where the batch path additionally amortizes
// the synchronous read stall across the batch.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/search.h"
#include "common/timer.h"

namespace pieces::bench {
namespace {

constexpr size_t kBatchSizes[] = {1, 8, 32, 128, 256};

// Runs `pass` (one full traversal of the probe set, returning its op
// count) once, or in a loop until the context's --duration deadline.
double MeasureNsPerOp(const Context& ctx,
                      const std::function<uint64_t()>& pass) {
  const uint64_t deadline_ns =
      ctx.duration_seconds > 0
          ? static_cast<uint64_t>(ctx.duration_seconds * 1e9)
          : 0;
  Timer timer;
  uint64_t ops = pass();
  while (deadline_ns != 0 && timer.ElapsedNanos() < deadline_ns) {
    ops += pass();
  }
  return ops == 0 ? 0
                  : static_cast<double>(timer.ElapsedNanos()) /
                        static_cast<double>(ops);
}

void RunBatchLookup(Context& ctx) {
  const size_t n = std::max<size_t>(ctx.base_keys, size_t{1} << 12);
  const size_t lookups = std::max<size_t>(1000, ctx.ops);
  const SearchKernel prior_kernel = GetSearchKernel();
  const char* simd_avail = SimdKernelAvailable() ? "yes" : "no";

  struct KernelMode {
    const char* name;
    SearchKernel kernel;
  };
  const KernelMode kernels[] = {
      {"scalar", SearchKernel::kScalar},
      {"simd", SearchKernel::kSimd},
  };

  ctx.sink.Section("index-level multi-get: ns/op and speedup vs batch=1");
  for (const char* ds : {"ycsb", "face"}) {
    std::vector<Key> keys = MakeKeys(ds, n, 7);
    std::vector<KeyValue> data(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      data[i] = {keys[i], keys[i] ^ 0x5a5a5a5a5a5a5a5aULL};
    }
    Rng rng(11);
    std::vector<Key> probes(lookups);
    for (Key& p : probes) p = keys[rng.NextUnder(keys.size())];

    for (const char* index_name :
         {"RMI", "RS", "PGM", "FITing-tree-inp", "FITing-tree-buf",
          "XIndex"}) {
      std::unique_ptr<OrderedIndex> index = MakeIndex(index_name);
      index->BulkLoad(data);
      std::vector<Value> values(lookups);
      std::unique_ptr<bool[]> found(new bool[lookups]);

      for (const KernelMode& km : kernels) {
        SetSearchKernel(km.kernel);
        double base_ns = 0;
        for (size_t batch : kBatchSizes) {
          uint64_t checksum = 0;
          auto pass = [&]() -> uint64_t {
            if (batch == 1) {
              // The single-key baseline the fast path is judged against.
              for (size_t i = 0; i < lookups; ++i) {
                checksum += index->Get(probes[i], &values[i]) ? 1 : 0;
              }
            } else {
              for (size_t i = 0; i < lookups; i += batch) {
                size_t m = std::min(batch, lookups - i);
                checksum += index->GetBatch(
                    std::span<const Key>(probes.data() + i, m),
                    values.data() + i, found.get() + i);
              }
            }
            return lookups;
          };
          double ns = MeasureNsPerOp(ctx, pass);
          if (checksum == 42) std::printf("#");  // Defeat DCE.
          if (batch == 1) base_ns = ns;
          ctx.sink.Add(ResultRow(index_name)
                           .Label("dataset", ds)
                           .Label("kernel", km.name)
                           .Label("simd_available", simd_avail)
                           .Label("batch", std::to_string(batch))
                           .Metric("ns_per_op", ns)
                           .Metric("speedup_vs_single",
                                   ns > 0 ? base_ns / ns : 0));
        }
      }
    }
  }
  SetSearchKernel(prior_kernel);

  // End-to-end through ViperStore with injected PMem read latency: the
  // batch path resolves handles via the index batch path, prefetches the
  // value slots, and charges the injected stall once per batch instead of
  // once per key.
  ctx.sink.Section("store-level multi-get under injected PMem read latency");
  {
    uint64_t read_ns = NvmReadLatencyNs() > 0 ? NvmReadLatencyNs() : 100;
    std::vector<Key> keys = MakeKeys("ycsb", n, 7);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    ViperStore::Config cfg;
    cfg.value_size = 200;
    cfg.pmem_capacity = keys.size() * 208 * 2 + (64 << 20);
    cfg.read_latency_ns = read_ns;
    for (const char* index_name : {"RMI", "PGM"}) {
      ViperStore store(MakeIndex(index_name), cfg);
      if (!store.BulkLoad(keys)) {
        ctx.sink.Add(ResultRow(index_name)
                         .Status("bulk_load_failed")
                         .Label("error", "bulk load failed"));
        continue;
      }
      Rng rng(11);
      std::vector<Key> probes(lookups);
      for (Key& p : probes) p = keys[rng.NextUnder(keys.size())];
      std::vector<uint8_t> value_buf(cfg.value_size);
      std::vector<uint8_t*> outs(lookups, value_buf.data());
      std::unique_ptr<bool[]> found(new bool[lookups]);
      double base_ns = 0;
      for (size_t batch : kBatchSizes) {
        uint64_t checksum = 0;
        auto pass = [&]() -> uint64_t {
          if (batch == 1) {
            for (size_t i = 0; i < lookups; ++i) {
              checksum += store.Get(probes[i], value_buf.data()) ? 1 : 0;
            }
          } else {
            for (size_t i = 0; i < lookups; i += batch) {
              size_t m = std::min(batch, lookups - i);
              checksum += store.GetBatch(
                  std::span<const Key>(probes.data() + i, m),
                  outs.data() + i, found.get() + i);
            }
          }
          return lookups;
        };
        double ns = MeasureNsPerOp(ctx, pass);
        if (checksum == 42) std::printf("#");
        if (batch == 1) base_ns = ns;
        ctx.sink.Add(ResultRow(index_name)
                         .Label("read_latency_ns", std::to_string(read_ns))
                         .Label("batch", std::to_string(batch))
                         .Metric("ns_per_op", ns)
                         .Metric("speedup_vs_single",
                                 ns > 0 ? base_ns / ns : 0));
      }
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    batch_lookup, "batch_lookup", "batched fast path",
    "Batched lookup fast path: SIMD last-mile + prefetch-interleaved "
    "multi-get",
    "interleaving predict/prefetch/resolve across a batch overlaps cache "
    "misses the single-key path serializes; speedup grows with batch size "
    "and with injected PMem latency",
    RunBatchLookup)

}  // namespace
}  // namespace pieces::bench
