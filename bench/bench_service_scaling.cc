// service_scaling: the sharded KV service (src/service/) as the
// concurrency escape hatch the paper's Figs. 12/14 point at. Most learned
// indexes are single-writer, so their multi-threaded write throughput is
// a wall; range-partitioning the key space into shard-per-worker pieces
// lets *every* registered index — including RMI/PGM/ALEX/FITing-tree —
// serve concurrent clients, and write throughput scales with shards
// (given enough cores) instead of being capped at one writer.
//
// Four sections:
//   1. saturation sweep — every registered index through the service at
//      increasing shard counts, clients offering unbounded load;
//   2. write scaling — single-writer learned indexes at 1/2/4/8 shards
//      with the speedup over one shard (the partitioning escape hatch);
//   3. admission control — offered load far above capacity against a
//      small queue, reject vs block policies (queue-full rejections are
//      observed and counted);
//   4. open-loop latency — moderate load, coordinated-omission-free
//      tails measured from scheduled arrival, scans included to exercise
//      the cross-shard fan-out/merge.
#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "service/loadgen.h"

namespace pieces::bench {
namespace {

using service::AdmissionPolicy;
using service::KvService;
using service::LoadGenOptions;
using service::LoadGenResult;
using service::ServiceConfig;
using service::ServiceStats;

std::unique_ptr<KvService> MakeService(const std::string& index_name,
                                       size_t shards,
                                       const std::vector<Key>& load,
                                       AdmissionPolicy policy,
                                       size_t queue_capacity,
                                       size_t headroom_bytes,
                                       uint64_t write_latency_ns) {
  ServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.queue_capacity = queue_capacity;
  cfg.admission = policy;
  cfg.store.value_size = 200;
  // Each shard holds ~1/shards of the load plus headroom for the
  // out-of-place puts a duration-bounded blast can generate.
  cfg.store.pmem_capacity =
      (load.size() * 208 * 4) / std::max<size_t>(1, shards) + headroom_bytes;
  cfg.store.read_latency_ns = NvmReadLatencyNs();
  cfg.store.write_latency_ns =
      write_latency_ns != 0 ? write_latency_ns : NvmWriteLatencyNs();
  auto svc = std::make_unique<KvService>(index_name, cfg, load);
  if (!svc->BulkLoad(load)) return nullptr;
  svc->Start();
  return svc;
}

// Per-shard throughput spread (straggler visibility), mirroring the
// executor's per-worker metrics.
ResultRow& AddShardSpread(ResultRow& row, const ServiceStats& stats,
                          double wall_seconds) {
  double min = 0, max = 0, mean = 0;
  std::vector<double> qps(stats.shards.size(), 0);
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    qps[s] = wall_seconds > 0
                 ? static_cast<double>(stats.shards[s].ops) / wall_seconds
                 : 0;
    min = s == 0 ? qps[s] : std::min(min, qps[s]);
    max = std::max(max, qps[s]);
    mean += qps[s];
  }
  mean /= qps.empty() ? 1 : static_cast<double>(qps.size());
  double var = 0;
  for (double v : qps) var += (v - mean) * (v - mean);
  var /= qps.empty() ? 1 : static_cast<double>(qps.size());
  return row.Metric("shard_qps_min", min)
      .Metric("shard_qps_max", max)
      .Metric("shard_qps_stddev", std::sqrt(var));
}

void RunServiceScaling(Context& ctx) {
  const bool smoke = ctx.base_keys <= 8192;
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 23);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);

  const double duration =
      ctx.duration_seconds > 0 ? ctx.duration_seconds : (smoke ? 0.12 : 1.0);
  const size_t clients = smoke ? 2 : std::max<size_t>(2, ctx.max_threads);
  // Saturation blasts put out-of-place records at a few hundred MB/s, so
  // headroom is sized to the measurement window (~1.5 GB per second of
  // duration, a ~5x margin). The simulated-PMem arena commits lazily, so
  // the unused reservation costs virtual address space only.
  const size_t headroom =
      static_cast<size_t>(1.5e9 * std::max(duration, 0.25));

  ctx.sink.Note("hardware threads: " +
                std::to_string(std::thread::hardware_concurrency()) +
                " — shard scaling needs at least one core per shard worker"
                " plus the clients");

  std::vector<Op> write_ops =
      GenerateOps(WorkloadSpec::WriteOnly(), ctx.ops, load, inserts, 99);
  std::vector<Op> read_ops =
      GenerateOps(WorkloadSpec::ReadOnly(), ctx.ops, load, inserts, 99);

  // 1. Saturation sweep: every registered index, unbounded offered load.
  const std::vector<size_t> sweep =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  for (size_t shards : sweep) {
    ctx.sink.Section("saturation, " + std::to_string(shards) + " shard(s), " +
                     std::to_string(clients) + " client(s)");
    for (const std::string& name : AllIndexNames()) {
      const bool writable = MakeIndex(name)->SupportsInsert();
      auto svc = MakeService(name, shards, load, AdmissionPolicy::kBlock,
                             4096, headroom, 0);
      if (svc == nullptr) {
        ctx.sink.Add(ResultRow(name)
                         .Status("bulk_load_failed")
                         .Label("shards", std::to_string(shards))
                         .Label("error", "bulk load failed"));
        continue;
      }
      LoadGenOptions lg;
      lg.target_qps = 0;  // saturate
      lg.duration_seconds = duration;
      lg.clients = clients;
      LoadGenResult r =
          RunOpenLoop(svc.get(), writable ? write_ops : read_ops, lg);
      ServiceStats stats = svc->Stats();
      svc->Shutdown();
      ResultRow row(name);
      row.Label("shards", std::to_string(shards))
          .Label("workload", writable ? "write-only" : "read-only")
          .Metric("qps", r.achieved_qps)
          .Metric("rejected", static_cast<double>(r.rejected))
          .Metric("store_full", static_cast<double>(r.store_full));
      AddShardSpread(row, stats, r.wall_seconds);
      ctx.sink.Add(std::move(row));
    }
  }

  // 2. Write scaling for the strictly single-writer learned indexes —
  // the indexes the paper shows cannot take concurrent writes at all.
  // Always sweeps to 8 shards (even at smoke scale) so the partitioning
  // speedup is visible in every run.
  std::vector<std::string> scaling_indexes;
  for (const std::string& name : LearnedIndexNames()) {
    auto idx = MakeIndex(name);
    if (idx->SupportsInsert() && !idx->SupportsConcurrentWrites()) {
      scaling_indexes.push_back(name);
    }
  }
  if (smoke) {
    scaling_indexes = {"PGM", "ALEX"};
  }
  ctx.sink.Section("write scaling, single-writer learned indexes");
  for (const std::string& name : scaling_indexes) {
    double base_qps = 0;
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      auto svc = MakeService(name, shards, load, AdmissionPolicy::kBlock,
                             4096, headroom, 0);
      if (svc == nullptr) {
        ctx.sink.Add(ResultRow(name)
                         .Status("bulk_load_failed")
                         .Label("shards", std::to_string(shards))
                         .Label("error", "bulk load failed"));
        continue;
      }
      LoadGenOptions lg;
      lg.target_qps = 0;
      lg.duration_seconds = duration;
      lg.clients = std::max(clients, shards / 2);
      LoadGenResult r = RunOpenLoop(svc.get(), write_ops, lg);
      svc->Shutdown();
      if (shards == 1) base_qps = r.achieved_qps;
      ctx.sink.Add(ResultRow(name)
                       .Label("shards", std::to_string(shards))
                       .Metric("qps", r.achieved_qps)
                       .Metric("speedup_vs_1shard",
                               base_qps > 0 ? r.achieved_qps / base_qps : 1));
    }
  }

  // 3. Admission control: offered load far above capacity (a simulated-
  // NVM write stall makes capacity deterministic and low), small queues.
  // kReject must observe and count queue-full rejections; kBlock shows
  // the same overload absorbed as backpressure instead.
  ctx.sink.Section("admission control: offered >> capacity, queue=256");
  const uint64_t slow_write_ns = 1500;
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kBlock}) {
    const char* policy_name =
        policy == AdmissionPolicy::kReject ? "reject" : "block";
    auto svc = MakeService("ALEX", 2, load, policy, 256, headroom,
                           slow_write_ns);
    if (svc == nullptr) continue;
    LoadGenOptions lg;
    lg.target_qps = 2e6;  // far beyond the stalled store's capacity
    lg.duration_seconds = duration;
    lg.clients = clients;
    LoadGenResult r = RunOpenLoop(svc.get(), write_ops, lg);
    ServiceStats stats = svc->Stats();
    svc->Shutdown();
    double reject_pct =
        r.issued > 0 ? 100.0 * static_cast<double>(r.rejected) /
                           static_cast<double>(r.issued)
                     : 0;
    ResultRow row("ALEX/" + std::string(policy_name));
    row.Label("policy", policy_name)
        .Metric("offered_qps", r.offered_qps)
        .Metric("achieved_qps", r.achieved_qps)
        .Metric("rejected", static_cast<double>(r.rejected))
        .Metric("reject_pct", reject_pct)
        .Metric("p999_ns", static_cast<double>(r.point_latency.P999()));
    AddShardSpread(row, stats, r.wall_seconds);
    ctx.sink.Add(std::move(row));
  }

  // 4. Open-loop latency at moderate load: coordinated-omission-free
  // tails (latency from *scheduled arrival*), with scans in the mix to
  // exercise the cross-shard fan-out and key-ordered merge.
  WorkloadSpec mixed;
  mixed.read_pct = 60;
  mixed.update_pct = 20;
  mixed.insert_pct = 10;
  mixed.rmw_pct = 5;
  mixed.scan_pct = 5;
  mixed.pick = KeyPick::kZipfian;
  mixed.scan_len = 50;
  std::vector<Op> mixed_ops = GenerateOps(mixed, ctx.ops, load, inserts, 7);
  const size_t lat_shards = smoke ? 2 : 4;
  ctx.sink.Section("open-loop latency, " + std::to_string(lat_shards) +
                   " shards (tails measured from scheduled arrival)");
  const std::vector<std::string> lat_indexes =
      smoke ? std::vector<std::string>{"ALEX"}
            : std::vector<std::string>{"ALEX", "PGM", "BTree", "OLC-BTree"};
  for (const std::string& name : lat_indexes) {
    auto svc = MakeService(name, lat_shards, load, AdmissionPolicy::kBlock,
                           4096, headroom, 0);
    if (svc == nullptr) continue;
    LoadGenOptions lg;
    lg.target_qps = smoke ? 20'000 : 100'000;
    lg.duration_seconds = duration;
    lg.clients = clients;
    LoadGenResult r = RunOpenLoop(svc.get(), mixed_ops, lg);
    svc->Shutdown();
    ctx.sink.Add(
        ResultRow(name)
            .Label("shards", std::to_string(lat_shards))
            .Metric("offered_qps", r.offered_qps)
            .Metric("achieved_qps", r.achieved_qps)
            .Metric("p50_ns", static_cast<double>(r.point_latency.P50()))
            .Metric("p99_ns", static_cast<double>(r.point_latency.P99()))
            .Metric("p999_ns", static_cast<double>(r.point_latency.P999()))
            .Metric("scan_p99_ns",
                    static_cast<double>(r.scan_latency.P99())));
  }
}

PIECES_REGISTER_EXPERIMENT(
    service_scaling, "service_scaling", "Service",
    "Sharded KV service: shard scaling, admission control, CO-free tails",
    "Range-partitioned shard-per-worker serving lets single-writer learned "
    "indexes scale concurrent write throughput with shard count, with "
    "bounded queues absorbing or rejecting overload",
    RunServiceScaling)

}  // namespace
}  // namespace pieces::bench
