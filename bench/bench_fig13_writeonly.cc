// Fig. 13: end-to-end write-only (insert) throughput and p99.9 tail,
// dataset 1x -> 4x. Paper findings: ALEX clearly wins among learned
// indexes (gapped inserts); FITing-tree-inp is worst with >100us tails
// (mass key movement); offsite-buffer indexes (XIndex, FITing-tree-buf)
// degrade most as the dataset grows (batch retrain storms).
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunFig13(Context& ctx) {
  for (const char* ds : {"ycsb", "osm"}) {
    for (size_t mult : {1, 4}) {
      size_t n = ctx.base_keys * mult;
      // Hold out every 4th key as the insert stream.
      std::vector<Key> all = MakeKeys(ds, n + n / 3, 17);
      std::vector<Key> load;
      std::vector<Key> inserts;
      SplitLoadAndInserts(all, 4, &load, &inserts);
      auto ops = GenerateOps(WorkloadSpec::WriteOnly(), ctx.ops, load,
                             inserts);
      ctx.sink.Section(std::string("dataset ") + ds + ", " +
                       std::to_string(load.size()) + " loaded keys");
      for (const std::string& name : UpdatableIndexNames()) {
        auto store = MakeStore(ctx, name, load);
        if (store == nullptr) continue;
        RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx));
        ctx.sink.Add(ThroughputRow(name, r)
                         .Label("dataset", ds)
                         .Label("keys", std::to_string(load.size())));
      }
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig13, "fig13", "Fig. 13", "Fig. 13: write-only end-to-end (Viper)",
    "ALEX best; FITing-tree-inp worst with huge tails; buffer strategies "
    "degrade as data grows",
    RunFig13)

}  // namespace
}  // namespace pieces::bench
