// Fig. 13: end-to-end write-only (insert) throughput and p99.9 tail,
// dataset 1x -> 4x. Paper findings: ALEX clearly wins among learned
// indexes (gapped inserts); FITing-tree-inp is worst with >100us tails
// (mass key movement); offsite-buffer indexes (XIndex, FITing-tree-buf)
// degrade most as the dataset grows (batch retrain storms).
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 13: write-only end-to-end (Viper)",
              "ALEX best; FITing-tree-inp worst with huge tails; buffer "
              "strategies degrade as data grows");
  const size_t ops_n = 200'000;
  for (const char* ds : {"ycsb", "osm"}) {
    for (size_t mult : {1, 4}) {
      size_t n = BaseKeys() * mult;
      // Hold out every 4th key as the insert stream.
      std::vector<Key> all = MakeKeys(ds, n + n / 3, 17);
      std::vector<Key> load;
      std::vector<Key> inserts;
      SplitLoadAndInserts(all, 4, &load, &inserts);
      auto ops = GenerateOps(WorkloadSpec::WriteOnly(), ops_n, load, inserts);
      std::printf("\n-- dataset %s, %zu loaded keys --\n", ds, load.size());
      for (const std::string& name : UpdatableIndexNames()) {
        auto store = MakeStore(name, load);
        if (store == nullptr) continue;
        RunResult r = RunStoreOps(store.get(), ops);
        PrintRow(name, r.mops, r.latency.P50(), r.latency.P999());
      }
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
