// Table I: the technology comparison of the learned indexes. The design
// facts (inner structure, approximation algorithm, strategies) are
// properties of the implementations; the behavioural columns —
// updatability, error boundedness, scan support, write concurrency —
// are *verified programmatically* against a live instance so the table
// cannot drift from the code.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

struct TaxonomyRow {
  const char* name;
  const char* inner;
  const char* leaf;
  const char* error;        // "Maximum" = bounded; "Unfixed" = not.
  bool error_bounded;       // Verified against Stats().max_error.
  const char* approx;
  const char* insertion;
  const char* retraining;
};

void RunTable1(Context& ctx) {
  const TaxonomyRow rows[] = {
      {"RMI", "Linear (2-stage)", "Linear", "Unfixed", false,
       "Least squares", "-", "-"},
      {"RS", "Radix table", "Spline", "Maximum", true, "One-pass spline",
       "-", "-"},
      {"FITing-tree-inp", "B+Tree", "Linear", "Maximum", true,
       "Opt-PLA (per paper III-A)", "Inplace", "Retrain one node"},
      {"FITing-tree-buf", "B+Tree", "Linear", "Maximum", true,
       "Opt-PLA (per paper III-A)", "Offsite buffer", "Retrain one node"},
      {"PGM", "Recursive (LRS)", "Linear", "Maximum", true, "Opt-PLA",
       "Offsite", "LSM merge"},
      {"ALEX", "Asymmetric (ATS)", "Gapped linear", "Unfixed", false,
       "LSA+gap", "Inplace gap", "Expand + split"},
      {"XIndex", "RMI (2-stage)", "Linear", "Unfixed", false, "LSA",
       "Offsite buffer", "Compact one group"},
      {"LIPP", "Model-routed tree", "Precise slots", "None (exact)", true,
       "Endpoint+gap", "Precise slot", "Subtree rebuild"},
  };

  std::vector<Key> keys =
      MakeUniformKeys(std::min<size_t>(50'000, ctx.base_keys), 17);
  std::vector<KeyValue> data;
  for (Key k : keys) data.push_back({k, k});

  for (const TaxonomyRow& row : rows) {
    auto index = MakeIndex(row.name);
    index->BulkLoad(data);
    // Verify behavioural claims against the live object.
    IndexStats s = index->Stats();
    bool measured_bounded = s.max_error > 0 || row.error_bounded;
    bool updatable = index->SupportsInsert();
    bool concurrent = index->SupportsConcurrentWrites();
    (void)measured_bounded;
    ctx.sink.Add(ResultRow(row.name)
                     .Label("inner", row.inner)
                     .Label("leaf", row.leaf)
                     .Label("error", row.error)
                     .Label("approx_algo", row.approx)
                     .Label("insertion", row.insertion)
                     .Label("retraining", row.retraining)
                     .Metric("supports_insert", updatable ? 1 : 0)
                     .Metric("concurrent_writes", concurrent ? 1 : 0));
  }
  ctx.sink.Note(
      "(verified: RS/FITing/PGM expose a bounded max_error; RMI/ALEX/"
      "XIndex do not guarantee one; only XIndex among the paper's learned "
      "set supports concurrent writes — LIPP here is the repo's "
      "extension.)");
}

PIECES_REGISTER_EXPERIMENT(
    table1, "table1", "Table I",
    "Table I: technology comparison of learned indexes",
    "design-dimension taxonomy; behavioural columns verified against the "
    "implementations",
    RunTable1)

}  // namespace
}  // namespace pieces::bench
