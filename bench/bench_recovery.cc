// Recovery experiment (extends Fig. 16 beyond clean rebuilds): crash
// consistency end to end.
//
//  1. Crash + rebuild sweep: every index x {1x, 4x} dataset size. The
//     store is bulk-loaded, then (for updatable indexes) dirtied with
//     out-of-place updates and fresh inserts so recovery has to validate
//     commit headers and resolve duplicate keys by seqno — the realistic
//     post-crash shape, not the pristine bulk-load image Fig. 16 times.
//     The crash itself is a real power cut (unpersisted bytes dropped).
//  2. Write-path durability cost: write-only throughput under the
//     two-barrier commit protocol (payload persist + header persist per
//     put), reporting persist barriers per op so the cost of crash
//     safety is visible next to the Mops number.
//  3. Service-level outage: a sharded KvService crashes every shard's
//     PMem and recovers in parallel; the row reports the slowest shard's
//     rebuild (the outage's critical path) and the summed rebuild work.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/router.h"

namespace pieces::bench {
namespace {

bool IsUpdatable(const std::string& name) {
  const std::vector<std::string>& u = UpdatableIndexNames();
  return std::find(u.begin(), u.end(), name) != u.end();
}

void RunCrashRebuildSweep(Context& ctx) {
  for (size_t mult : {1, 4}) {
    size_t n = ctx.base_keys * mult;
    std::vector<Key> all = MakeUniformKeys(n + n / 4, 17);
    std::vector<Key> load;
    std::vector<Key> inserts;
    SplitLoadAndInserts(all, 5, &load, &inserts);
    ctx.sink.Section("crash + rebuild, " + std::to_string(load.size()) +
                     " loaded keys");
    for (const std::string& name : AllIndexNames()) {
      auto store = MakeStore(ctx, name, load);
      if (store == nullptr) continue;
      // Dirty the store so recovery earns its keep: updates leave stale
      // committed slots (dedup by seqno), inserts add keys beyond the
      // bulk-load image. Read-only indexes recover the pristine load.
      size_t mutations = 0;
      if (IsUpdatable(name)) {
        size_t updates = std::min<size_t>(load.size(), ctx.ops / 10);
        for (size_t i = 0; i < updates; ++i) {
          if (store->PutSynthetic(load[i * 7 % load.size()])) ++mutations;
        }
        size_t fresh = std::min<size_t>(inserts.size(), ctx.ops / 10);
        for (size_t i = 0; i < fresh; ++i) {
          if (store->PutSynthetic(inserts[i])) ++mutations;
        }
      }
      store->Crash();
      uint64_t nanos = store->Recover();
      ctx.sink.Add(
          ResultRow(name)
              .Label("keys", std::to_string(load.size()))
              .Metric("mutations", static_cast<double>(mutations))
              .Metric("recovered_keys", static_cast<double>(store->size()))
              .Metric("recover_ms", static_cast<double>(nanos) / 1e6));
    }
  }
}

void RunDurabilityCost(Context& ctx) {
  size_t n = ctx.base_keys;
  std::vector<Key> all = MakeUniformKeys(n + n / 3, 23);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);
  auto ops = GenerateOps(WorkloadSpec::WriteOnly(), ctx.ops, load, inserts);
  ctx.sink.Section("write-path durability cost, " +
                   std::to_string(load.size()) + " loaded keys");
  for (const std::string& name : UpdatableIndexNames()) {
    auto store = MakeStore(ctx, name, load);
    if (store == nullptr) continue;
    uint64_t persists_before = store->pmem().persist_count();
    RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx));
    double per_op =
        r.ops_executed == 0
            ? 0
            : static_cast<double>(store->pmem().persist_count() -
                                  persists_before) /
                  static_cast<double>(r.ops_executed);
    ctx.sink.Add(ThroughputRow(name, r)
                     .Label("keys", std::to_string(load.size()))
                     .Metric("persists_per_op", per_op));
  }
}

void RunServiceOutage(Context& ctx) {
  size_t n = ctx.base_keys;
  std::vector<Key> keys = MakeUniformKeys(n, 31);
  std::sort(keys.begin(), keys.end());
  ctx.sink.Section("service crash-and-recover, " + std::to_string(n) +
                   " keys, " + std::to_string(ctx.max_threads) + " shards");
  for (const std::string& name : {std::string("BTree"), std::string("ALEX")}) {
    service::ServiceConfig cfg;
    cfg.num_shards = ctx.max_threads;
    cfg.store.value_size = 200;
    cfg.store.pmem_capacity = (n / std::max<size_t>(1, cfg.num_shards)) *
                                  224 * 4 +
                              (64 << 20);
    service::KvService svc(name, cfg, keys);
    if (!svc.BulkLoad(keys)) {
      ctx.sink.Add(ResultRow(name).Status("bulk_load_failed"));
      continue;
    }
    svc.Start();
    // A little live traffic before the outage so the crash interrupts a
    // warm service, not a freshly loaded one.
    for (size_t i = 0; i < std::min<size_t>(keys.size(), 1024); ++i) {
      svc.Put(keys[i * 13 % keys.size()]);
    }
    std::vector<uint64_t> rebuild = svc.CrashAndRecover();
    uint64_t worst = 0;
    uint64_t total = 0;
    for (uint64_t ns : rebuild) {
      worst = std::max(worst, ns);
      total += ns;
    }
    ctx.sink.Add(
        ResultRow(name)
            .Label("shards", std::to_string(rebuild.size()))
            .Metric("outage_critical_path_ms", static_cast<double>(worst) / 1e6)
            .Metric("rebuild_total_ms", static_cast<double>(total) / 1e6)
            .Metric("keys_after", static_cast<double>(svc.TotalKeys())));
  }
}

void RunRecovery(Context& ctx) {
  RunCrashRebuildSweep(ctx);
  RunDurabilityCost(ctx);
  RunServiceOutage(ctx);
}

PIECES_REGISTER_EXPERIMENT(
    recovery, "recovery", "Fig. 16 (ext)",
    "Crash recovery: post-crash rebuild, durability cost, service outage",
    "Rebuild time is dominated by index build (BTree fast, ALEX/XIndex "
    "slow); the two-barrier commit protocol prices crash safety into the "
    "write path; a sharded service recovers on the slowest shard's clock",
    RunRecovery)

}  // namespace
}  // namespace pieces::bench
