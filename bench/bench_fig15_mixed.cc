// Fig. 15: read-write-mixed workloads YCSB-A/B/D/F (zipfian request
// skew). Paper findings: ALEX keeps its lead across all mixes; every
// other learned index drops hard on YCSB-D because its writes are true
// *insertions* (not updates), stressing the insert + retrain path.
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunFig15(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 17);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);

  struct Mix {
    const char* name;
    WorkloadSpec spec;
  };
  const Mix mixes[] = {
      {"YCSB-A", WorkloadSpec::YcsbA()},
      {"YCSB-B", WorkloadSpec::YcsbB()},
      {"YCSB-D", WorkloadSpec::YcsbD()},
      {"YCSB-F", WorkloadSpec::YcsbF()},
  };
  for (const Mix& mix : mixes) {
    auto ops = GenerateOps(mix.spec, ctx.ops, load, inserts);
    ctx.sink.Section(mix.name);
    for (const std::string& name : UpdatableIndexNames()) {
      auto store = MakeStore(ctx, name, load);
      if (store == nullptr) continue;
      RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx));
      ctx.sink.Add(ThroughputRow(name, r).Label("workload", mix.name));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig15, "fig15", "Fig. 15", "Fig. 15: read-write-mixed (YCSB-A/B/D/F)",
    "ALEX stays strong everywhere; other learned indexes cliff on YCSB-D "
    "(inserts, not updates)",
    RunFig15)

}  // namespace
}  // namespace pieces::bench
