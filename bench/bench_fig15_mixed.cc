// Fig. 15: read-write-mixed workloads YCSB-A/B/D/F (zipfian request
// skew). Paper findings: ALEX keeps its lead across all mixes; every
// other learned index drops hard on YCSB-D because its writes are true
// *insertions* (not updates), stressing the insert + retrain path.
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 15: read-write-mixed (YCSB-A/B/D/F)",
              "ALEX stays strong everywhere; other learned indexes cliff "
              "on YCSB-D (inserts, not updates)");
  const size_t n = BaseKeys();
  const size_t ops_n = 200'000;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 17);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);

  struct Mix {
    const char* name;
    WorkloadSpec spec;
  };
  const Mix mixes[] = {
      {"YCSB-A", WorkloadSpec::YcsbA()},
      {"YCSB-B", WorkloadSpec::YcsbB()},
      {"YCSB-D", WorkloadSpec::YcsbD()},
      {"YCSB-F", WorkloadSpec::YcsbF()},
  };
  for (const Mix& mix : mixes) {
    auto ops = GenerateOps(mix.spec, ops_n, load, inserts);
    std::printf("\n-- %s --\n", mix.name);
    for (const std::string& name : UpdatableIndexNames()) {
      auto store = MakeStore(name, load);
      if (store == nullptr) continue;
      RunResult r = RunStoreOps(store.get(), ops);
      PrintRow(name, r.mops, r.latency.P50(), r.latency.P999());
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
