// rebalance: live shard split/merge and multi-writer shards — the two
// service-layer answers to the paper's core finding that most learned
// indexes serialize writers. A static range partition is only as good as
// its key-space balance: a hot range concentrates traffic on one shard
// and its single worker becomes the whole service's ceiling. The
// rebalancer watches per-shard queue depth and splits the hot shard live
// (retire -> drain -> migrate -> publish a new partition snapshot), so
// the hot range ends up spread over several workers without stopping the
// service. Independently, indexes that support concurrent writes (OLC
// ALEX, XIndex, OLC-BTree, ...) can run several writer lanes inside one
// shard instead of requiring more shards.
//
// Three sections:
//   1. hot-range recovery — WorkloadSpec::HotRange against (a) a static
//      single-shard partition, (b) a static multi-shard partition (the
//      hot range still lands in one shard), (c) the same start with the
//      auto-rebalancer enabled. The headline metric is the sustained
//      post-split throughput speedup over the static single-writer
//      partition (target: >= 1.5x);
//   2. writer scaling — concurrent-write indexes with 1/2/4 writer lanes
//      on a single shard, write-only load, speedup over one writer;
//   3. split tail cost — open-loop moderate load with a live split
//      triggered mid-run; coordinated-omission-free tails plus the count
//      of requests that lost the race and completed as kRetry.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "service/loadgen.h"

namespace pieces::bench {
namespace {

using service::AdmissionPolicy;
using service::KvService;
using service::LoadGenOptions;
using service::LoadGenResult;
using service::ServiceConfig;

std::unique_ptr<KvService> MakeService(const std::string& index_name,
                                       const ServiceConfig& cfg,
                                       const std::vector<Key>& load) {
  auto svc = std::make_unique<KvService>(index_name, cfg, load);
  if (!svc->BulkLoad(load)) return nullptr;
  svc->Start();
  return svc;
}

ServiceConfig BaseConfig(size_t shards, const std::vector<Key>& load,
                         size_t headroom_bytes) {
  ServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.queue_capacity = 1024;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.store.value_size = 200;
  cfg.store.pmem_capacity =
      (load.size() * 208 * 4) / std::max<size_t>(1, shards) + headroom_bytes;
  cfg.store.read_latency_ns = NvmReadLatencyNs();
  cfg.store.write_latency_ns = NvmWriteLatencyNs();
  return cfg;
}

void RunRebalance(Context& ctx) {
  const bool smoke = ctx.base_keys <= 8192;
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 29);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);

  const double duration =
      ctx.duration_seconds > 0 ? ctx.duration_seconds : (smoke ? 0.12 : 1.0);
  const size_t clients = smoke ? 2 : std::max<size_t>(4, ctx.max_threads);
  const size_t headroom =
      static_cast<size_t>(1.5e9 * std::max(duration, 0.25));

  const unsigned cores = std::thread::hardware_concurrency();
  ctx.sink.Note("hardware threads: " + std::to_string(cores) +
                " — split recovery needs spare cores for the new workers");
  if (cores <= 1) {
    ctx.sink.Note("single-core machine: the simulated-NVM latency is a "
                  "busy-wait, so extra shards/writers timeshare one core "
                  "and every speedup column is expected to read ~1.0 or "
                  "below; run on >= 4 cores for the real effect");
  }

  // 1. Hot-range recovery. 90% of ops hit a contiguous 5% slice of the
  // key space (rank-skewed toward the slice start — the adversarial case
  // for range partitioning, since the load clusters instead of
  // scattering). The static partitions are stuck with whatever shard the
  // slice falls into; the rebalancer splits that shard repeatedly until
  // no piece sustains pressure.
  std::vector<Op> hot_ops =
      GenerateOps(WorkloadSpec::HotRange(/*update_pct=*/30), ctx.ops, load,
                  inserts, 31);
  ctx.sink.Section("hot-range load: static partition vs auto-rebalance");
  const std::string hot_index = "ALEX";
  double static1_qps = 0;

  auto run_hot = [&](const std::string& label, ServiceConfig cfg) {
    auto svc = MakeService(hot_index, cfg, load);
    if (svc == nullptr) {
      ctx.sink.Add(ResultRow(label).Status("bulk_load_failed"));
      return;
    }
    LoadGenOptions lg;
    lg.target_qps = 0;  // saturate
    lg.duration_seconds = duration;
    lg.clients = clients;
    // Warm pass: lets the rebalancer observe pressure and perform its
    // splits; the measured pass then reports *sustained* throughput on
    // the settled partition. The static services just warm caches.
    RunOpenLoop(svc.get(), hot_ops, lg);
    LoadGenResult r = RunOpenLoop(svc.get(), hot_ops, lg);
    service::ServiceStats stats = svc->Stats();
    svc->Shutdown();
    if (label == "static-1shard") static1_qps = r.achieved_qps;
    ctx.sink.Add(
        ResultRow(label)
            .Label("index", hot_index)
            .Metric("qps", r.achieved_qps)
            .Metric("speedup_vs_static1",
                    static1_qps > 0 ? r.achieved_qps / static1_qps : 1)
            .Metric("final_shards", static_cast<double>(stats.shards.size()))
            .Metric("splits", static_cast<double>(stats.splits))
            .Metric("merges", static_cast<double>(stats.merges))
            .Metric("retried", static_cast<double>(r.retried))
            .Metric("p99_ns", static_cast<double>(r.point_latency.P99())));
  };

  run_hot("static-1shard", BaseConfig(1, load, headroom));
  run_hot("static-4shard", BaseConfig(4, load, headroom));
  {
    // Same single-shard start as the baseline; splitting is the only way
    // this configuration can add workers.
    ServiceConfig cfg = BaseConfig(1, load, headroom);
    cfg.rebalance.enabled = true;
    cfg.rebalance.poll_interval_ms = 1;
    // Saturating clients keep roughly `clients` requests in flight; any
    // shard sustaining half of them is hot enough to split.
    cfg.rebalance.split_queue_depth = std::max<size_t>(2, clients / 2);
    cfg.rebalance.min_split_keys = std::max<size_t>(64, load.size() / 256);
    cfg.rebalance.max_shards = 16;
    cfg.rebalance.cooldown_ms = smoke ? 5 : 20;
    run_hot("auto-rebalance", cfg);
  }

  // 2. Writer scaling inside one shard: the OLC indexes take concurrent
  // writers directly, so a single shard can run several writer lanes.
  // Single-writer indexes ignore the knob (the service clamps to 1).
  std::vector<Op> write_ops =
      GenerateOps(WorkloadSpec::WriteOnly(), ctx.ops, load, inserts, 33);
  const std::vector<std::string> writer_indexes =
      smoke ? std::vector<std::string>{"ALEX"}
            : std::vector<std::string>{"ALEX", "XIndex", "OLC-BTree"};
  ctx.sink.Section("writer lanes per shard (1 shard, write-only)");
  for (const std::string& name : writer_indexes) {
    double base_qps = 0;
    for (size_t writers : {size_t{1}, size_t{2}, size_t{4}}) {
      ServiceConfig cfg = BaseConfig(1, load, headroom);
      cfg.writers_per_shard = writers;
      auto svc = MakeService(name, cfg, load);
      if (svc == nullptr) {
        ctx.sink.Add(ResultRow(name).Status("bulk_load_failed"));
        continue;
      }
      LoadGenOptions lg;
      lg.target_qps = 0;
      lg.duration_seconds = duration;
      lg.clients = std::max(clients, writers);
      LoadGenResult r = RunOpenLoop(svc.get(), write_ops, lg);
      service::ServiceStats stats = svc->Stats();
      svc->Shutdown();
      if (writers == 1) base_qps = r.achieved_qps;
      ctx.sink.Add(ResultRow(name)
                       .Label("writers", std::to_string(writers))
                       .Metric("qps", r.achieved_qps)
                       .Metric("effective_writers",
                               static_cast<double>(stats.shards[0].writers))
                       .Metric("speedup_vs_1writer",
                               base_qps > 0 ? r.achieved_qps / base_qps : 1));
    }
  }

  // 3. Split tail cost: moderate open-loop load, one live split in the
  // middle of the run. Latency is measured from scheduled arrival, so the
  // retire -> drain -> migrate -> publish window is charged to the
  // requests it delays; `retried` counts requests that lost the race with
  // the partition swap and came back kRetry after the re-route budget.
  ctx.sink.Section("live split under open-loop load (CO-free tails)");
  WorkloadSpec mixed;
  mixed.read_pct = 70;
  mixed.update_pct = 30;
  mixed.pick = KeyPick::kZipfian;
  std::vector<Op> mixed_ops = GenerateOps(mixed, ctx.ops, load, inserts, 37);
  for (bool split : {false, true}) {
    ServiceConfig cfg = BaseConfig(2, load, headroom);
    auto svc = MakeService(hot_index, cfg, load);
    if (svc == nullptr) continue;
    LoadGenOptions lg;
    lg.target_qps = smoke ? 20'000 : 100'000;
    lg.duration_seconds = duration;
    lg.clients = clients;
    std::thread splitter;
    if (split) {
      splitter = std::thread([&svc, duration] {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(duration / 2));
        svc->SplitShard(0);
      });
    }
    LoadGenResult r = RunOpenLoop(svc.get(), mixed_ops, lg);
    if (splitter.joinable()) splitter.join();
    service::ServiceStats stats = svc->Stats();
    svc->Shutdown();
    ctx.sink.Add(
        ResultRow(split ? "split-mid-run" : "no-split")
            .Label("index", hot_index)
            .Metric("achieved_qps", r.achieved_qps)
            .Metric("splits", static_cast<double>(stats.splits))
            .Metric("retried", static_cast<double>(r.retried))
            .Metric("p50_ns", static_cast<double>(r.point_latency.P50()))
            .Metric("p99_ns", static_cast<double>(r.point_latency.P99()))
            .Metric("p999_ns", static_cast<double>(r.point_latency.P999())));
  }
}

PIECES_REGISTER_EXPERIMENT(
    rebalance, "rebalance", "Service",
    "Live shard split/merge and multi-writer shards under hot-range load",
    "Queue-depth-driven live splitting recovers throughput a static range "
    "partition loses to a hot range, and OLC indexes scale writes inside "
    "one shard via writer lanes",
    RunRebalance)

}  // namespace
}  // namespace pieces::bench
