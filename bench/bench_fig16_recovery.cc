// Fig. 16: index recovery time after a crash — rebuild the DRAM index
// from the persistent value pages, at 1x and 4x dataset size. Paper
// findings: BTree(-family) recovers fastest among ordered indexes; RS is
// the fastest learned index (single pass); PGM is moderate; ALEX and
// XIndex are the slowest learned indexes and the gap widens with scale.
#include "bench/bench_util.h"
#include "common/timer.h"

namespace pieces::bench {
namespace {

void RunFig16(Context& ctx) {
  for (size_t mult : {1, 4}) {
    size_t n = ctx.base_keys * mult;
    std::vector<Key> keys = MakeUniformKeys(n, 17);
    std::vector<KeyValue> entries;
    entries.reserve(n);
    for (Key k : keys) entries.push_back({k, k});
    ctx.sink.Section(std::to_string(n) + " keys");
    for (const std::string& name : AllIndexNames()) {
      // Pure index (re)build time: the paper's Fig. 16 quantity.
      auto index = MakeIndex(name);
      Timer timer;
      index->BulkLoad(entries);
      double build_ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
      // End-to-end recovery: power failure, then PMem page scan (commit-
      // header validation) + sort + rebuild.
      auto store = MakeStore(ctx, name, keys);
      if (store == nullptr) continue;
      store->Crash();
      uint64_t nanos = store->Recover();
      ctx.sink.Add(ResultRow(name)
                       .Label("keys", std::to_string(n))
                       .Metric("build_ms", build_ms)
                       .Metric("total_recover_ms",
                               static_cast<double>(nanos) / 1e6));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig16, "fig16", "Fig. 16", "Fig. 16: recovery (index rebuild) time",
    "RS fastest learned (single pass); ALEX/XIndex slowest and the spread "
    "widens with dataset size",
    RunFig16)

}  // namespace
}  // namespace pieces::bench
