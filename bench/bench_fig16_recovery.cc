// Fig. 16: index recovery time after a crash — rebuild the DRAM index
// from the persistent value pages, at 1x and 4x dataset size. Paper
// findings: BTree(-family) recovers fastest among ordered indexes; RS is
// the fastest learned index (single pass); PGM is moderate; ALEX and
// XIndex are the slowest learned indexes and the gap widens with scale.
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 16: recovery (index rebuild) time",
              "RS fastest learned (single pass); ALEX/XIndex slowest and "
              "the spread widens with dataset size");
  for (size_t mult : {1, 4}) {
    size_t n = BaseKeys() * mult;
    std::vector<Key> keys = MakeUniformKeys(n, 17);
    std::vector<KeyValue> entries;
    entries.reserve(n);
    for (Key k : keys) entries.push_back({k, k});
    std::printf("\n-- %zu keys --\n", n);
    std::printf("%-18s %14s %16s\n", "index", "build-ms",
                "total-recover-ms");
    for (const std::string& name : AllIndexNames()) {
      // Pure index (re)build time: the paper's Fig. 16 quantity.
      auto index = MakeIndex(name);
      Timer timer;
      index->BulkLoad(entries);
      double build_ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
      // End-to-end recovery: PMem page scan + sort + rebuild.
      auto store = MakeStore(name, keys);
      if (store == nullptr) continue;
      uint64_t nanos = store->Recover();
      std::printf("%-18s %14.1f %16.1f\n", name.c_str(), build_ms,
                  static_cast<double>(nanos) / 1e6);
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
