// pieces_bench: the single declarative experiment driver. Every paper
// table/figure is a registered experiment (see experiment.h); this binary
// enumerates, filters and runs them, rendering human tables and/or
// machine-readable JSONL/CSV through a shared ResultSink.
//
//   pieces_bench --list
//   pieces_bench --experiment=fig10,fig15 --format=json --out=results/
//   pieces_bench --smoke --format=json,csv --out=results/
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment.h"
#include "common/cli.h"
#include "common/config.h"
#include "common/report.h"

namespace pieces::bench {
namespace {

constexpr const char* kUsage = R"(pieces_bench — declarative experiment driver

Usage: pieces_bench [flags]
  --list                 list registered experiments and exit
  --experiment=a,b,...   run only the named experiments (default: all)
  --format=table,json,csv  output formats (default: table)
  --out=DIR              write json/csv to DIR/<experiment>.{jsonl,csv}
                         (default: stdout)
  --keys=N               dataset-size baseline (default: 200000 x PIECES_SCALE)
  --ops=N                op-stream length baseline (default: 200000)
  --duration=SECONDS     time-based mode: measured passes loop over the op
                         stream for SECONDS instead of one traversal
                         (mutually exclusive with --ops)
  --batch=N              multi-get width: read-only phases issue GetBatch
                         calls of N keys (default 1 = single-key Gets)
  --warmup=N             untimed warmup ops before each measured run (default 0)
  --repeats=N            measured repetitions, throughput averaged (default 1)
  --threads=N            thread ceiling for multi-threaded experiments
                         (default: PIECES_THREADS or 4)
  --data-dir=PATH        writable directory for disk-backend page files
                         (default: $PIECES_DATA_DIR, else a per-run temp
                         directory removed on exit)
  --smoke                tiny-scale preset (keys=4096 ops=2000) for CI smoke
  --help                 this text

Env knobs: PIECES_SCALE, PIECES_NVM_READ_NS, PIECES_NVM_WRITE_NS,
PIECES_THREADS, PIECES_DATA_DIR (see README.md).
)";

const std::vector<std::string> kKnownFlags = {
    "list",     "experiment", "format",  "out",     "keys",  "ops",
    "duration", "batch",      "warmup",  "repeats", "threads", "smoke",
    "data-dir", "help"};

int Main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  for (const std::string& name : flags.Names()) {
    bool known = false;
    for (const std::string& k : kKnownFlags) known = known || k == name;
    if (!known) {
      std::fprintf(stderr, "pieces_bench: unknown flag --%s\n%s",
                   name.c_str(), kUsage);
      return 2;
    }
  }
  if (!flags.positional().empty()) {
    std::fprintf(stderr, "pieces_bench: unexpected argument '%s'\n%s",
                 flags.positional()[0].c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (flags.GetBool("list")) {
    std::printf("%-18s %-12s %s\n", "name", "figure", "title");
    for (const Experiment& e : AllExperiments()) {
      std::printf("%-18s %-12s %s\n", e.name.c_str(), e.figure.c_str(),
                  e.title.c_str());
    }
    return 0;
  }

  ResultSink::Options sink_opts;
  sink_opts.table = false;
  for (const std::string& fmt : flags.Has("format")
                                    ? flags.GetList("format")
                                    : std::vector<std::string>{"table"}) {
    if (fmt == "table") {
      sink_opts.table = true;
    } else if (fmt == "json" || fmt == "jsonl") {
      sink_opts.json = true;
    } else if (fmt == "csv") {
      sink_opts.csv = true;
    } else {
      std::fprintf(stderr,
                   "pieces_bench: unknown format '%s' "
                   "(expected table, json or csv)\n",
                   fmt.c_str());
      return 2;
    }
  }
  sink_opts.out_dir = flags.GetString("out");

  const bool smoke = flags.GetBool("smoke");
  ResultSink sink(sink_opts);
  Context ctx{sink};
  ctx.base_keys = flags.GetU64(
      "keys", smoke ? 4096 : 200'000 * BenchScale());
  ctx.ops = flags.GetU64("ops", smoke ? 2000 : 200'000);
  flags.CheckMutuallyExclusive("ops", "duration");
  ctx.duration_seconds =
      static_cast<double>(flags.GetU64("duration", 0));
  ctx.batch = flags.GetU64("batch", 1);
  if (flags.Has("batch") && ctx.batch < 1) {
    std::fprintf(stderr, "pieces_bench: --batch must be >= 1\n");
    return 2;
  }
  ctx.warmup_ops = flags.GetU64("warmup", 0);
  ctx.repeats = flags.GetU64("repeats", 1);
  ctx.max_threads = flags.GetU64("threads", BenchMaxThreads());

  // Disk-backend data directory: flag beats env beats a per-run temp dir
  // (which we create now and remove on exit — the page stores unlink
  // their own files). The probe catches an unwritable path up front with
  // a clear error instead of an abort deep inside shard construction.
  std::string data_dir = flags.GetString("data-dir");
  if (data_dir.empty()) data_dir = BenchDataDir();
  bool created_data_dir = false;
  if (data_dir.empty()) {
    data_dir = "/tmp/pieces_bench_data." + std::to_string(::getpid());
    created_data_dir = ::mkdir(data_dir.c_str(), 0755) == 0;
  } else {
    ::mkdir(data_dir.c_str(), 0755);  // best effort; EEXIST is fine
  }
  {
    const std::string probe = data_dir + "/.pieces_write_probe";
    std::FILE* f = std::fopen(probe.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "pieces_bench: data dir '%s' is not writable "
                   "(--data-dir or PIECES_DATA_DIR must name a writable "
                   "directory)\n",
                   data_dir.c_str());
      return 2;
    }
    std::fclose(f);
    std::remove(probe.c_str());
  }
  ctx.data_dir = data_dir;

  if (!flags.errors().empty()) {
    for (const std::string& err : flags.errors()) {
      std::fprintf(stderr, "pieces_bench: %s\n", err.c_str());
    }
    return 2;
  }

  std::vector<const Experiment*> selected;
  if (!flags.Has("experiment") ||
      flags.GetString("experiment") == "all") {
    for (const Experiment& e : AllExperiments()) selected.push_back(&e);
  } else {
    for (const std::string& name : flags.GetList("experiment")) {
      const Experiment* e = FindExperiment(name);
      if (e == nullptr) {
        std::fprintf(stderr,
                     "pieces_bench: unknown experiment '%s' "
                     "(--list shows the registered names)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(e);
    }
  }

  for (const Experiment* e : selected) {
    std::fprintf(stderr, "[pieces_bench] running %s (%s)...\n",
                 e->name.c_str(), e->figure.c_str());
    sink.BeginExperiment(e->name, e->figure, e->title, e->claim);
    e->run(ctx);
    sink.EndExperiment();
  }
  // Stores unlink their page files; drop the temp dir only if we made it.
  if (created_data_dir) ::rmdir(data_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace pieces::bench

int main(int argc, char** argv) { return pieces::bench::Main(argc, argv); }
