// Paper extension (§V-B1): the paper predicts that an asymmetric tree
// with an actively reshaped CDF and *precise positions* — i.e. LIPP,
// which was not open source at the time — should beat the evaluated
// indexes on lookups. This bench tests that prediction: LIPP vs ALEX vs
// PGM vs BTree on read-only lookups and on inserts.
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"

namespace pieces::bench {
namespace {

void RunExtLipp(Context& ctx) {
  const size_t n = ctx.base_keys;
  const size_t ops_n = ctx.ops * 2;
  for (const char* ds : {"ycsb", "osm"}) {
    std::vector<Key> all = MakeKeys(ds, n + n / 3, 17);
    std::vector<Key> load;
    std::vector<Key> inserts;
    SplitLoadAndInserts(all, 4, &load, &inserts);
    std::vector<KeyValue> data;
    for (Key k : load) data.push_back({k, k});

    ctx.sink.Section(std::string("dataset ") + ds +
                     " (bare index, no KV store)");
    for (const char* name : {"LIPP", "ALEX", "PGM", "BTree"}) {
      auto index = MakeIndex(name);
      index->BulkLoad(data);

      Rng rng(5);
      std::vector<Key> probes(ops_n);
      for (Key& p : probes) p = load[rng.NextUnder(load.size())];
      Timer timer;
      Value v = 0;
      uint64_t found = 0;
      for (Key p : probes) found += index->Get(p, &v);
      double lookup_mops =
          static_cast<double>(ops_n) / timer.ElapsedSeconds() / 1e6;
      if (found != probes.size()) {
        ctx.sink.Note(std::string(name) + ": lookup misses!");
      }

      Timer ins_timer;
      for (Key k : inserts) index->Insert(k, k);
      double insert_mops = static_cast<double>(inserts.size()) /
                           ins_timer.ElapsedSeconds() / 1e6;

      IndexStats s = index->Stats();
      ctx.sink.Add(
          ResultRow(name)
              .Label("dataset", ds)
              .Metric("lookup_mops", lookup_mops)
              .Metric("insert_mops", insert_mops)
              .Metric("avg_depth", s.avg_depth)
              .Metric("index_mb",
                      static_cast<double>(index->TotalSizeBytes()) / 1e6));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    ext_lipp, "ext_lipp", "§V-B1 ext.",
    "Extension: LIPP (the paper's §V-B1 prediction)",
    "precise positions should make lookups faster than any search-based "
    "learned index, at extra space cost",
    RunExtLipp)

}  // namespace
}  // namespace pieces::bench
