// Paper extension (§V-B1): the paper predicts that an asymmetric tree
// with an actively reshaped CDF and *precise positions* — i.e. LIPP,
// which was not open source at the time — should beat the evaluated
// indexes on lookups. This bench tests that prediction: LIPP vs ALEX vs
// PGM vs BTree on read-only lookups and on inserts.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Extension: LIPP (the paper's §V-B1 prediction)",
              "precise positions should make lookups faster than any "
              "search-based learned index, at extra space cost");
  const size_t n = BaseKeys();
  const size_t ops_n = 400'000;
  for (const char* ds : {"ycsb", "osm"}) {
    std::vector<Key> all = MakeKeys(ds, n + n / 3, 17);
    std::vector<Key> load;
    std::vector<Key> inserts;
    SplitLoadAndInserts(all, 4, &load, &inserts);
    std::vector<KeyValue> data;
    for (Key k : load) data.push_back({k, k});

    std::printf("\n-- dataset %s (bare index, no KV store) --\n", ds);
    std::printf("%-10s %14s %14s %10s %12s\n", "index", "lookup-Mops",
                "insert-Mops", "avg-depth", "index-MB");
    for (const char* name : {"LIPP", "ALEX", "PGM", "BTree"}) {
      auto index = MakeIndex(name);
      index->BulkLoad(data);

      Rng rng(5);
      std::vector<Key> probes(ops_n);
      for (Key& p : probes) p = load[rng.NextUnder(load.size())];
      Timer timer;
      Value v = 0;
      uint64_t found = 0;
      for (Key p : probes) found += index->Get(p, &v);
      double lookup_mops =
          static_cast<double>(ops_n) / timer.ElapsedSeconds() / 1e6;
      if (found != probes.size()) std::printf("(lookup misses!)");

      Timer ins_timer;
      for (Key k : inserts) index->Insert(k, k);
      double insert_mops = static_cast<double>(inserts.size()) /
                           ins_timer.ElapsedSeconds() / 1e6;

      IndexStats s = index->Stats();
      std::printf("%-10s %14.3f %14.3f %10.2f %12.2f\n", name, lookup_mops,
                  insert_mops, s.avg_depth,
                  static_cast<double>(index->TotalSizeBytes()) / 1e6);
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
