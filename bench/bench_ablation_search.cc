// Ablation (paper §VI): the in-leaf "last mile" search algorithms —
// binary, branchless binary, interpolation and three-point interpolation
// over full sorted arrays per dataset distribution, plus exponential
// search from a model hint and bounded binary search inside a +-eps
// window (the error regimes every learned index lives in).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/search.h"
#include "common/timer.h"

namespace pieces::bench {
namespace {

// Pre-generates probe keys (existing) for a run.
std::vector<Key> Probes(Rng& rng, const std::vector<Key>& keys, size_t n) {
  std::vector<Key> probes(n);
  for (Key& p : probes) p = keys[rng.NextUnder(keys.size())];
  return probes;
}

// Times `fn(probe)` over the probe set; ns per lookup.
double MeasureNs(const std::vector<Key>& probes,
                 const std::function<size_t(Key)>& fn) {
  Timer timer;
  uint64_t sink = 0;
  for (Key p : probes) sink += fn(p);
  double ns = static_cast<double>(timer.ElapsedNanos()) /
              static_cast<double>(probes.size());
  if (sink == 42) std::printf("#");  // Defeat dead-code elimination.
  return ns;
}

void RunAblationSearch(Context& ctx) {
  const size_t n = std::min<size_t>(
      size_t{1} << 20, std::max<size_t>(ctx.base_keys, size_t{1} << 12));
  const size_t lookups = std::max<size_t>(1000, ctx.ops);

  ctx.sink.Section("full-array search per dataset distribution");
  for (const char* ds : {"ycsb", "osm", "face"}) {
    std::vector<Key> keys = MakeKeys(ds, n, 7);
    Rng rng(11);
    auto probes = Probes(rng, keys, lookups);
    struct Algo {
      const char* name;
      std::function<size_t(Key)> fn;
    };
    const Key* data = keys.data();
    size_t count = keys.size();
    const Algo algos[] = {
        {"binary",
         [=](Key k) { return BinarySearchLowerBound(data, 0, count, k); }},
        {"branchless",
         [=](Key k) { return BranchlessLowerBound(data, 0, count, k); }},
        {"interpolation",
         [=](Key k) {
           return InterpolationSearchLowerBound(data, 0, count, k);
         }},
        {"three-point",
         [=](Key k) {
           return ThreePointSearchLowerBound(data, 0, count, k);
         }},
        {"simd",
         [=](Key k) { return SimdLowerBound(data, 0, count, k); }},
    };
    for (const Algo& algo : algos) {
      ctx.sink.Add(ResultRow(algo.name)
                       .Label("dataset", ds)
                       .Label("simd_available",
                              SimdKernelAvailable() ? "yes" : "no")
                       .Metric("ns_per_lookup",
                               MeasureNs(probes, algo.fn)));
    }
  }

  // Exponential search from a hint that is off by up to `err` positions —
  // the model-error regime every learned index lives in.
  ctx.sink.Section("exponential search from model hint (ycsb)");
  std::vector<Key> keys = MakeKeys("ycsb", n, 7);
  for (size_t err : {0, 8, 64, 512, 4096}) {
    Rng rng(13);
    struct Probe {
      Key key;
      size_t hint;
    };
    std::vector<Probe> probes(lookups);
    for (Probe& p : probes) {
      size_t rank = rng.NextUnder(keys.size());
      p.key = keys[rank];
      size_t off = rng.NextUnder(2 * err + 1);
      size_t hint = rank + off >= err ? rank + off - err : 0;
      p.hint = hint >= keys.size() ? keys.size() - 1 : hint;
    }
    Timer timer;
    uint64_t sink = 0;
    for (const Probe& p : probes) {
      sink += ExponentialSearchLowerBound(keys.data(), keys.size(), p.hint,
                                          p.key);
    }
    double ns = static_cast<double>(timer.ElapsedNanos()) /
                static_cast<double>(probes.size());
    if (sink == 42) std::printf("#");
    ctx.sink.Add(ResultRow("exponential-from-hint")
                     .Label("hint_err", std::to_string(err))
                     .Metric("ns_per_lookup", ns));
  }

  // Bounded search inside a +-eps window (the PGM/FITing last mile),
  // binary vs the SIMD count-less terminal kernel on identical windows.
  ctx.sink.Section("bounded search in +-eps window (ycsb)");
  for (size_t eps : {8, 64, 512, 4096}) {
    struct Probe {
      Key key;
      size_t lo;
      size_t hi;
    };
    Rng rng(13);
    std::vector<Probe> probes(lookups);
    for (Probe& p : probes) {
      size_t rank = rng.NextUnder(keys.size());
      p.key = keys[rank];
      p.lo = rank > eps ? rank - eps : 0;
      p.hi = std::min(keys.size(), rank + eps + 1);
    }
    struct WindowAlgo {
      const char* name;
      size_t (*fn)(const uint64_t*, size_t, size_t, uint64_t);
    };
    const WindowAlgo window_algos[] = {
        {"bounded-binary-window", &BinarySearchLowerBound},
        {"bounded-simd-window", &SimdLowerBound},
    };
    for (const WindowAlgo& algo : window_algos) {
      Timer timer;
      uint64_t sink = 0;
      for (const Probe& p : probes) {
        sink += algo.fn(keys.data(), p.lo, p.hi, p.key);
      }
      double ns = static_cast<double>(timer.ElapsedNanos()) /
                  static_cast<double>(probes.size());
      if (sink == 42) std::printf("#");
      ctx.sink.Add(ResultRow(algo.name)
                       .Label("eps", std::to_string(eps))
                       .Label("simd_available",
                              SimdKernelAvailable() ? "yes" : "no")
                       .Metric("ns_per_lookup", ns));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    ablation_search, "ablation_search", "§VI ablation",
    "Ablation: in-leaf search algorithms (§VI)",
    "interpolation wins on uniform data and loses under skew; "
    "exponential-search cost grows with log(model error)",
    RunAblationSearch)

}  // namespace
}  // namespace pieces::bench
