// Ablation (paper §VI): the in-leaf "last mile" search algorithms —
// binary, branchless binary, exponential (from a model hint),
// interpolation, and three-point interpolation — measured with
// google-benchmark over dataset distributions and error-window sizes.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "common/search.h"
#include "workload/datasets.h"

namespace pieces {
namespace {

const std::vector<uint64_t>& Keys(int dataset) {
  static const std::vector<uint64_t> ycsb = MakeKeys("ycsb", 1 << 20, 7);
  static const std::vector<uint64_t> osm = MakeKeys("osm", 1 << 20, 7);
  static const std::vector<uint64_t> face = MakeKeys("face", 1 << 20, 7);
  switch (dataset) {
    case 1: return osm;
    case 2: return face;
    default: return ycsb;
  }
}

// Pre-generates probe keys (existing) for a run.
std::vector<uint64_t> Probes(const std::vector<uint64_t>& keys, size_t n) {
  Rng rng(11);
  std::vector<uint64_t> probes(n);
  for (uint64_t& p : probes) p = keys[rng.NextUnder(keys.size())];
  return probes;
}

void BM_BinarySearch(benchmark::State& state) {
  const auto& keys = Keys(static_cast<int>(state.range(0)));
  auto probes = Probes(keys, 4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinarySearchLowerBound(
        keys.data(), 0, keys.size(), probes[i++ & 4095]));
  }
}
BENCHMARK(BM_BinarySearch)->Arg(0)->Arg(1)->Arg(2);

void BM_BranchlessSearch(benchmark::State& state) {
  const auto& keys = Keys(static_cast<int>(state.range(0)));
  auto probes = Probes(keys, 4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchlessLowerBound(keys.data(), 0,
                                                  keys.size(),
                                                  probes[i++ & 4095]));
  }
}
BENCHMARK(BM_BranchlessSearch)->Arg(0)->Arg(1)->Arg(2);

void BM_InterpolationSearch(benchmark::State& state) {
  const auto& keys = Keys(static_cast<int>(state.range(0)));
  auto probes = Probes(keys, 4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterpolationSearchLowerBound(
        keys.data(), 0, keys.size(), probes[i++ & 4095]));
  }
}
BENCHMARK(BM_InterpolationSearch)->Arg(0)->Arg(1)->Arg(2);

void BM_ThreePointSearch(benchmark::State& state) {
  const auto& keys = Keys(static_cast<int>(state.range(0)));
  auto probes = Probes(keys, 4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThreePointSearchLowerBound(
        keys.data(), 0, keys.size(), probes[i++ & 4095]));
  }
}
BENCHMARK(BM_ThreePointSearch)->Arg(0)->Arg(1)->Arg(2);

// Exponential search from a hint that is off by `range(1)` positions —
// the model-error regime every learned index lives in.
void BM_ExponentialFromHint(benchmark::State& state) {
  const auto& keys = Keys(0);
  Rng rng(13);
  struct Probe {
    uint64_t key;
    size_t hint;
  };
  std::vector<Probe> probes(4096);
  size_t err = static_cast<size_t>(state.range(1));
  for (Probe& p : probes) {
    size_t rank = rng.NextUnder(keys.size());
    p.key = keys[rank];
    size_t off = rng.NextUnder(2 * err + 1);
    size_t hint = rank + off >= err ? rank + off - err : 0;
    p.hint = hint >= keys.size() ? keys.size() - 1 : hint;
  }
  size_t i = 0;
  for (auto _ : state) {
    const Probe& p = probes[i++ & 4095];
    benchmark::DoNotOptimize(
        ExponentialSearchLowerBound(keys.data(), keys.size(), p.hint, p.key));
  }
}
BENCHMARK(BM_ExponentialFromHint)
    ->Args({0, 0})
    ->Args({0, 8})
    ->Args({0, 64})
    ->Args({0, 512})
    ->Args({0, 4096});

// Bounded binary search inside a +-eps window (the PGM/FITing last mile).
void BM_BoundedBinaryWindow(benchmark::State& state) {
  const auto& keys = Keys(0);
  Rng rng(13);
  size_t eps = static_cast<size_t>(state.range(0));
  struct Probe {
    uint64_t key;
    size_t lo;
    size_t hi;
  };
  std::vector<Probe> probes(4096);
  for (Probe& p : probes) {
    size_t rank = rng.NextUnder(keys.size());
    p.key = keys[rank];
    p.lo = rank > eps ? rank - eps : 0;
    p.hi = std::min(keys.size(), rank + eps + 1);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Probe& p = probes[i++ & 4095];
    benchmark::DoNotOptimize(
        BinarySearchLowerBound(keys.data(), p.lo, p.hi, p.key));
  }
}
BENCHMARK(BM_BoundedBinaryWindow)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace pieces

BENCHMARK_MAIN();
