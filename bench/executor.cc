#include "bench/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <thread>

#include "common/timer.h"

namespace pieces::bench {
namespace {

constexpr size_t kNumOpTypes = 5;

// Per-worker measurement of one pass: ops executed and the worker's own
// wall time (barrier release -> that worker's finish). The per-worker
// numbers expose stragglers; the pass wall time is the slowest worker's.
struct PassResult {
  uint64_t wall_ns = 0;
  std::vector<uint64_t> thread_ops;
  std::vector<uint64_t> thread_ns;
};

// Executes ops [0, count) partitioned round-robin across threads. When
// `recorders` is null the pass is untimed warmup. When duration_ns > 0
// each worker wraps around its partition until the deadline. Clock start
// is taken *after* every worker has spawned and checked in at the
// barrier, and clock end is the finish time of the slowest worker —
// thread spawn/join never counts.
PassResult RunPass(StoreBackend* store, const std::vector<Op>& ops,
                   size_t count, size_t threads, uint64_t duration_ns,
                   size_t batch,
                   std::vector<std::vector<LatencyRecorder>>* recorders) {
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> max_finish{0};
  const bool timed = recorders != nullptr;
  PassResult result;
  result.thread_ops.assign(threads, 0);
  result.thread_ns.assign(threads, 0);

  auto worker = [&](size_t t) {
    std::vector<uint8_t> buf(256);
    std::vector<Key> scan_out;
    // Multi-get gather arrays; every out aliases `buf` (the bench
    // discards payloads), which is safe because the store copies values
    // one at a time.
    std::vector<Key> batch_keys(batch);
    std::vector<uint8_t*> batch_outs(batch, buf.data());
    std::unique_ptr<bool[]> batch_found(new bool[batch]);
    LatencyRecorder* recs = timed ? (*recorders)[t].data() : nullptr;
    ready.fetch_add(1, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    const uint64_t t_start = NowNanos();
    const uint64_t deadline = duration_ns > 0 ? t_start + duration_ns : 0;
    uint64_t executed = 0;
    size_t i = deadline == 0 ? t : t % count;
    while (true) {
      if (deadline == 0) {
        // Single traversal: stop once the stride leaves [0, count).
        if (i >= count) break;
      } else if (NowNanos() >= deadline) {
        break;
      }
      if (batch > 1 && ops[i].type == OpType::kRead) {
        // Gather the run of consecutive reads along this worker's stride
        // and issue them as one multi-get.
        size_t n = 0;
        while (n < batch && ops[i].type == OpType::kRead) {
          batch_keys[n++] = ops[i].key;
          i += threads;
          if (i >= count) {
            if (deadline == 0) break;
            i %= count;
          }
        }
        Timer timer;
        store->GetBatch(std::span<const Key>(batch_keys.data(), n),
                        batch_outs.data(), batch_found.get());
        if (timed) {
          uint64_t per_op = timer.ElapsedNanos() / n;
          for (size_t k = 0; k < n; ++k) {
            recs[static_cast<size_t>(OpType::kRead)].Record(per_op);
          }
        }
        executed += n;
        continue;
      }
      const Op& op = ops[i];
      Timer timer;
      switch (op.type) {
        case OpType::kRead:
          store->Get(op.key, buf.data());
          break;
        case OpType::kUpdate:
        case OpType::kInsert:
          store->PutSynthetic(op.key);
          break;
        case OpType::kReadModifyWrite:
          store->Get(op.key, buf.data());
          store->PutSynthetic(op.key);
          break;
        case OpType::kScan:
          scan_out.clear();
          store->Scan(op.key, op.scan_len, &scan_out);
          break;
      }
      if (timed) recs[static_cast<size_t>(op.type)].Record(timer.ElapsedNanos());
      ++executed;
      i += threads;
      if (deadline != 0 && i >= count) i %= count;  // wrap in duration mode
    }
    uint64_t finish = NowNanos();
    result.thread_ops[t] = executed;
    result.thread_ns[t] = finish - t_start;
    uint64_t seen = max_finish.load(std::memory_order_relaxed);
    while (finish > seen &&
           !max_finish.compare_exchange_weak(seen, finish,
                                             std::memory_order_relaxed)) {
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  uint64_t start = NowNanos();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  result.wall_ns = max_finish.load(std::memory_order_relaxed) - start;
  return result;
}

}  // namespace

double RunStats::WorkerMopsMin() const {
  double m = 0;
  for (size_t i = 0; i < per_worker_mops.size(); ++i) {
    m = i == 0 ? per_worker_mops[i] : std::min(m, per_worker_mops[i]);
  }
  return m;
}

double RunStats::WorkerMopsMax() const {
  double m = 0;
  for (double v : per_worker_mops) m = std::max(m, v);
  return m;
}

double RunStats::WorkerMopsStddev() const {
  if (per_worker_mops.size() < 2) return 0;
  double mean = 0;
  for (double v : per_worker_mops) mean += v;
  mean /= static_cast<double>(per_worker_mops.size());
  double var = 0;
  for (double v : per_worker_mops) var += (v - mean) * (v - mean);
  var /= static_cast<double>(per_worker_mops.size());
  return std::sqrt(var);
}

RunStats RunStoreOps(StoreBackend* store, const std::vector<Op>& ops,
                     const ExecutorOptions& opts) {
  RunStats stats;
  if (ops.empty()) return stats;
  const size_t threads = std::max<size_t>(1, opts.threads);
  const size_t repeats = std::max<size_t>(1, opts.repeats);
  const uint64_t duration_ns =
      opts.duration_seconds > 0
          ? static_cast<uint64_t>(opts.duration_seconds * 1e9)
          : 0;

  const size_t batch = std::max<size_t>(1, opts.batch);

  if (opts.warmup_ops > 0) {
    RunPass(store, ops, std::min(opts.warmup_ops, ops.size()), threads,
            /*duration_ns=*/0, batch, nullptr);
  }

  uint64_t total_ns = 0;
  std::vector<uint64_t> worker_ops(threads, 0);
  std::vector<uint64_t> worker_ns(threads, 0);
  std::vector<std::vector<LatencyRecorder>> recorders(
      threads, std::vector<LatencyRecorder>(kNumOpTypes));
  for (size_t rep = 0; rep < repeats; ++rep) {
    PassResult pass = RunPass(store, ops, ops.size(), threads, duration_ns,
                              batch, &recorders);
    total_ns += pass.wall_ns;
    for (size_t t = 0; t < threads; ++t) {
      stats.ops_executed += pass.thread_ops[t];
      worker_ops[t] += pass.thread_ops[t];
      worker_ns[t] += pass.thread_ns[t];
    }
  }

  stats.wall_seconds = static_cast<double>(total_ns) * 1e-9;
  stats.mops = stats.wall_seconds > 0
                   ? static_cast<double>(stats.ops_executed) /
                         stats.wall_seconds / 1e6
                   : 0;
  stats.per_worker_mops.resize(threads);
  for (size_t t = 0; t < threads; ++t) {
    stats.per_worker_mops[t] =
        worker_ns[t] > 0 ? 1e3 * static_cast<double>(worker_ops[t]) /
                               static_cast<double>(worker_ns[t])
                         : 0;
  }
  for (const auto& per_thread : recorders) {
    for (size_t t = 0; t < kNumOpTypes; ++t) {
      stats.per_type[t].Merge(per_thread[t]);
      if (t != static_cast<size_t>(OpType::kScan)) {
        stats.point.Merge(per_thread[t]);
      }
    }
  }
  return stats;
}

}  // namespace pieces::bench
