#include "bench/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/timer.h"

namespace pieces::bench {
namespace {

constexpr size_t kNumOpTypes = 5;

// Executes ops [0, count) partitioned round-robin across threads. When
// `recorders` is null the pass is untimed warmup. Returns the measured
// wall time in nanoseconds: clock start is taken *after* every worker has
// spawned and checked in at the barrier, and clock end is the finish time
// of the slowest worker — thread spawn/join never counts.
uint64_t RunPass(ViperStore* store, const std::vector<Op>& ops, size_t count,
                 size_t threads,
                 std::vector<std::vector<LatencyRecorder>>* recorders) {
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> max_finish{0};
  const bool timed = recorders != nullptr;

  auto worker = [&](size_t t) {
    std::vector<uint8_t> buf(256);
    std::vector<Key> scan_out;
    LatencyRecorder* recs = timed ? (*recorders)[t].data() : nullptr;
    ready.fetch_add(1, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (size_t i = t; i < count; i += threads) {
      const Op& op = ops[i];
      Timer timer;
      switch (op.type) {
        case OpType::kRead:
          store->Get(op.key, buf.data());
          break;
        case OpType::kUpdate:
        case OpType::kInsert:
          store->PutSynthetic(op.key);
          break;
        case OpType::kReadModifyWrite:
          store->Get(op.key, buf.data());
          store->PutSynthetic(op.key);
          break;
        case OpType::kScan:
          scan_out.clear();
          store->Scan(op.key, op.scan_len, &scan_out);
          break;
      }
      if (timed) recs[static_cast<size_t>(op.type)].Record(timer.ElapsedNanos());
    }
    uint64_t finish = NowNanos();
    uint64_t seen = max_finish.load(std::memory_order_relaxed);
    while (finish > seen &&
           !max_finish.compare_exchange_weak(seen, finish,
                                             std::memory_order_relaxed)) {
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  uint64_t start = NowNanos();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  return max_finish.load(std::memory_order_relaxed) - start;
}

}  // namespace

RunStats RunStoreOps(ViperStore* store, const std::vector<Op>& ops,
                     const ExecutorOptions& opts) {
  RunStats stats;
  if (ops.empty()) return stats;
  const size_t threads = std::max<size_t>(1, opts.threads);
  const size_t repeats = std::max<size_t>(1, opts.repeats);

  if (opts.warmup_ops > 0) {
    RunPass(store, ops, std::min(opts.warmup_ops, ops.size()), threads,
            nullptr);
  }

  uint64_t total_ns = 0;
  std::vector<std::vector<LatencyRecorder>> recorders(
      threads, std::vector<LatencyRecorder>(kNumOpTypes));
  for (size_t rep = 0; rep < repeats; ++rep) {
    total_ns += RunPass(store, ops, ops.size(), threads, &recorders);
    stats.ops_executed += ops.size();
  }

  stats.wall_seconds = static_cast<double>(total_ns) * 1e-9;
  stats.mops = stats.wall_seconds > 0
                   ? static_cast<double>(stats.ops_executed) /
                         stats.wall_seconds / 1e6
                   : 0;
  for (const auto& per_thread : recorders) {
    for (size_t t = 0; t < kNumOpTypes; ++t) {
      stats.per_type[t].Merge(per_thread[t]);
      if (t != static_cast<size_t>(OpType::kScan)) {
        stats.point.Merge(per_thread[t]);
      }
    }
  }
  return stats;
}

}  // namespace pieces::bench
