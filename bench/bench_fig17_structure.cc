// Fig. 17(c)+(d): the index-structure dimension in isolation.
// (c) root-to-leaf routing time of each inner structure (BTREE / LRS /
//     RMI / ATS) over the same pivot arrays of growing size;
// (d) the (structure cost, leaf cost) plane for the paper's four
//     composition archetypes — the closer to the origin, the better.
// Paper findings: ATS routes fastest at any leaf count (variable depth);
// LRS beats BTREE when leaves are many (calculation vs comparison);
// fewer leaves always means faster routing; ALEX (ATS + LSA-gap) sits
// nearest the origin.
#include <cstdio>
#include <vector>

#include "anatomy/inner_structures.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/search.h"
#include "common/timer.h"
#include "pla/lsa.h"
#include "pla/optimal_pla.h"

namespace pieces::bench {
namespace {

// Predecessor index of `key` in sorted `pivots`.
size_t FindSegmentIdx(const std::vector<Key>& pivots, Key key) {
  size_t pos = BinarySearchLowerBound(pivots.data(), 0, pivots.size(), key);
  if (pos < pivots.size() && pivots[pos] == key) return pos;
  return pos == 0 ? 0 : pos - 1;
}

double MeasureRouteNs(const InnerStructure& inner,
                      const std::vector<Key>& keys, size_t lookups) {
  Rng rng(5);
  std::vector<Key> probes(lookups);
  for (Key& p : probes) p = keys[rng.NextUnder(keys.size())];
  Timer timer;
  uint64_t sink = 0;
  for (Key p : probes) sink += inner.Route(p);
  double ns = static_cast<double>(timer.ElapsedNanos()) / lookups;
  if (sink == 42) std::printf("#");
  return ns;
}

void PartC(Context& ctx, const std::vector<Key>& keys, size_t lookups) {
  ctx.sink.Section("(c) inner-structure routing time vs leaf count");
  for (size_t leaves : {1000, 4000, 16000, 64000}) {
    if (leaves > keys.size()) continue;
    // Pivots: every (n/leaves)-th key, mimicking leaf start keys.
    std::vector<Key> pivots;
    size_t stride = keys.size() / leaves;
    for (size_t i = 0; i < keys.size(); i += stride) pivots.push_back(keys[i]);
    for (const std::string& kind : InnerStructureKinds()) {
      auto inner = MakeInnerStructure(kind);
      inner->Build(pivots);
      ctx.sink.Add(ResultRow(kind)
                       .Label("leaves", std::to_string(pivots.size()))
                       .Metric("route_ns",
                               MeasureRouteNs(*inner, keys, lookups)));
    }
  }
}

void PartD(Context& ctx, const std::vector<Key>& keys, size_t lookups) {
  ctx.sink.Section(
      "(d) composition plane: (structure-ns, leaf-ns) per archetype; "
      "closer to origin = better");
  struct Archetype {
    const char* name;
    const char* structure;
    const char* leaf_algo;  // "opt" or "lsa" or "gap".
    size_t param;
  };
  const Archetype archetypes[] = {
      {"FITing (BTREE+Opt-PLA)", "BTREE", "opt", 64},
      {"PGM    (LRS+Opt-PLA)", "LRS", "opt", 64},
      {"XIndex (RMI+LSA)", "RMI", "lsa", 2048},
      {"ALEX   (ATS+LSA-gap)", "ATS", "gap", 8192},
  };
  for (const Archetype& a : archetypes) {
    std::vector<Key> pivots;
    double leaf_ns = 0;
    size_t leaves = 0;

    Rng rng(5);
    if (std::string(a.leaf_algo) == "gap") {
      LsaGapResult gap = BuildLsaGap(keys.data(), keys.size(), a.param, 0.7);
      leaves = gap.segments.size();
      for (const GappedSegment& g : gap.segments) {
        pivots.push_back(g.first_key);
      }
      // Materialize the real gapped arrays (sentinel-filled) and measure
      // the ALEX-style exponential search from the model prediction.
      std::vector<std::vector<Key>> arrays;
      for (const GappedSegment& g : gap.segments) {
        std::vector<Key> slot_keys(g.capacity, ~0ull);
        std::vector<uint8_t> occ(g.capacity, 0);
        for (size_t i = 0; i < g.count; ++i) {
          slot_keys[g.slots[i]] = keys[g.base_rank + i];
          occ[g.slots[i]] = 1;
        }
        Key carry = ~0ull;
        for (size_t i = g.capacity; i-- > 0;) {
          if (occ[i]) {
            carry = slot_keys[i];
          } else {
            slot_keys[i] = carry;
          }
        }
        arrays.push_back(std::move(slot_keys));
      }
      std::vector<std::pair<Key, size_t>> probes;
      probes.reserve(lookups);
      for (size_t i = 0; i < lookups; ++i) {
        Key k = keys[rng.NextUnder(keys.size())];
        probes.push_back({k, FindSegmentIdx(pivots, k)});
      }
      Timer timer;
      uint64_t sink = 0;
      for (const auto& [k, seg] : probes) {
        const GappedSegment& g = gap.segments[seg];
        size_t hint = g.model.PredictClamped(k, g.capacity);
        sink += ExponentialSearchLowerBound(arrays[seg].data(), g.capacity,
                                            hint, k);
      }
      leaf_ns = static_cast<double>(timer.ElapsedNanos()) / lookups;
      if (sink == 42) std::printf("#");
    } else {
      PlaResult pla =
          std::string(a.leaf_algo) == "opt"
              ? BuildOptimalPla(keys.data(), keys.size(), a.param)
              : BuildLsa(keys.data(), keys.size(), a.param);
      leaves = pla.segments.size();
      for (const Segment& s : pla.segments) pivots.push_back(s.first_key);
      size_t err = pla.max_error + 1;
      std::vector<std::pair<Key, const Segment*>> probes;
      probes.reserve(lookups);
      for (size_t i = 0; i < lookups; ++i) {
        Key k = keys[rng.NextUnder(keys.size())];
        probes.push_back({k, &pla.segments[FindSegment(pla.segments, k)]});
      }
      Timer timer;
      uint64_t sink = 0;
      for (const auto& [k, seg] : probes) {
        size_t pred = seg->PredictRank(k);
        size_t lo = pred > err ? pred - err : 0;
        size_t hi = std::min(keys.size(), pred + err + 1);
        sink += BinarySearchLowerBound(keys.data(), lo, hi, k);
      }
      leaf_ns = static_cast<double>(timer.ElapsedNanos()) / lookups;
      if (sink == 42) std::printf("#");
    }

    auto inner = MakeInnerStructure(a.structure);
    inner->Build(pivots);
    double structure_ns = MeasureRouteNs(*inner, keys, lookups);
    ctx.sink.Add(ResultRow(a.name)
                     .Label("structure", a.structure)
                     .Label("leaf_algo", a.leaf_algo)
                     .Metric("leaves", static_cast<double>(leaves))
                     .Metric("structure_ns", structure_ns)
                     .Metric("leaf_ns", leaf_ns));
  }
}

void RunFig17Structure(Context& ctx) {
  const size_t n = ctx.base_keys;
  const size_t lookups = std::max<size_t>(1000, ctx.ops);
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  PartC(ctx, keys, lookups);
  PartD(ctx, keys, lookups);
}

PIECES_REGISTER_EXPERIMENT(
    fig17cd, "fig17cd", "Fig. 17(c)(d)",
    "Fig. 17(c)(d): index structures in isolation",
    "ATS fastest at any leaf count; LRS > BTREE at high leaf counts; "
    "ALEX's combination sits nearest the origin",
    RunFig17Structure)

}  // namespace
}  // namespace pieces::bench
