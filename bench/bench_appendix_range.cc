// Paper appendix: range-query performance of the learned indexes (the
// paper evaluated ranges and shipped the plots in its online appendix).
// Scans of growing length over the Viper store: short scans are dominated
// by the lookup (learned indexes win like Fig. 10); long scans are
// dominated by sequential leaf traversal, where layout matters — gapped
// arrays (ALEX) touch more slots than packed arrays (PGM/FITing).
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Appendix: range queries (scan length sweep)",
              "short scans follow the lookup ranking; long scans narrow "
              "the gap and favour packed leaf layouts");
  const size_t n = BaseKeys();
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  for (uint32_t len : {10u, 100u, 1000u}) {
    WorkloadSpec spec;
    spec.read_pct = 0;
    spec.scan_pct = 100;
    spec.scan_len = len;
    auto ops = GenerateOps(spec, 20'000, keys, {});
    std::printf("\n-- scan length %u --\n", len);
    for (const char* name : {"RMI", "RS", "FITing-tree-buf", "PGM", "ALEX",
                             "XIndex", "LIPP", "BTree", "ART", "Wormhole",
                             "SkipList"}) {
      auto store = MakeStore(name, keys);
      if (store == nullptr) continue;
      RunResult r = RunStoreOps(store.get(), ops);
      std::printf("%-18s %10.1f Kscans/s   p50 %8llu ns\n", name,
                  r.mops * 1000.0,
                  static_cast<unsigned long long>(r.latency.P50()));
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
