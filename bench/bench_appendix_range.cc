// Paper appendix: range-query performance of the learned indexes (the
// paper evaluated ranges and shipped the plots in its online appendix).
// Scans of growing length over the Viper store: short scans are dominated
// by the lookup (learned indexes win like Fig. 10); long scans are
// dominated by sequential leaf traversal, where layout matters — gapped
// arrays (ALEX) touch more slots than packed arrays (PGM/FITing).
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunAppendixRange(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  for (uint32_t len : {10u, 100u, 1000u}) {
    WorkloadSpec spec;
    spec.read_pct = 0;
    spec.scan_pct = 100;
    spec.scan_len = len;
    auto ops = GenerateOps(spec, std::max<size_t>(1, ctx.ops / 10), keys, {});
    ctx.sink.Section("scan length " + std::to_string(len));
    for (const char* name : {"RMI", "RS", "FITing-tree-buf", "PGM", "ALEX",
                             "XIndex", "LIPP", "BTree", "ART", "Wormhole",
                             "SkipList"}) {
      auto store = MakeStore(ctx, name, keys);
      if (store == nullptr) continue;
      RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx));
      ctx.sink.Add(
          ResultRow(name)
              .Label("scan_len", std::to_string(len))
              .Metric("kscans", r.mops * 1000.0)
              .Metric("p50_ns", static_cast<double>(r.scans().P50())));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    appendix_range, "appendix_range", "appendix",
    "Appendix: range queries (scan length sweep)",
    "short scans follow the lookup ranking; long scans narrow the gap and "
    "favour packed leaf layouts",
    RunAppendixRange)

}  // namespace
}  // namespace pieces::bench
