// disk_tier: the learned indexes serving a dataset larger than memory.
// Records live in paged files (DiskStore) behind a CLOCK buffer pool
// sized to a *fraction* of the dataset; models and fence keys stay in
// DRAM. The sweep prices the disk tier's cost model — page fetches per
// lookup and pool hit rate vs pool fraction — per index family and
// dataset, next to the in-memory ViperStore baseline running the exact
// same op stream through the exact same serving code (StoreBackend).
// Further sections check Get/Scan conformance between the two backends
// on a dataset 20x the pool, show the page-granular batch grouping
// beating single-key fetches under a thrashing pool, and confirm the
// write path costs exactly two fsync barriers per put (payload + header,
// record_format.h).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "store/disk_store.h"
#include "store/io_engine.h"

namespace pieces::bench {
namespace {

constexpr double kPoolFractions[] = {0.05, 0.25, 1.0};

// Pages needed to hold `n` records (224B each in 4K pages => 18 slots).
size_t DataPages(size_t n, const DiskStore::Config& cfg) {
  const size_t record = sizeof(Key) + cfg.value_size + 16;
  const size_t slots = std::max<size_t>(1, cfg.page_size / record);
  return (n + slots - 1) / slots;
}

DiskStore::Config DiskConfig(const Context& ctx, size_t n_keys,
                             double pool_fraction, int file_id) {
  DiskStore::Config cfg;
  cfg.value_size = 200;
  cfg.page_size = 4096;
  const size_t pages = DataPages(n_keys, cfg);
  cfg.pool_pages = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(pages) * pool_fraction));
  // Headroom for out-of-place updates.
  cfg.file_capacity = (pages * 4 + 4096) * cfg.page_size;
  cfg.path = ctx.data_dir + "/disk_tier_" + std::to_string(file_id) +
             ".pages";
  return cfg;
}

std::vector<Key> LoadKeys(const std::string& dataset, size_t n) {
  std::vector<Key> keys = MakeKeys(dataset, n, 7);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void RunDiskTier(Context& ctx) {
  const size_t n = std::max<size_t>(ctx.base_keys, size_t{1} << 12);
  const size_t lookups = std::max<size_t>(1000, ctx.ops);
  int file_id = 0;

  // ---- Pool-fraction sweep ------------------------------------------
  ctx.sink.Section(
      "uniform point reads: disk tier (by pool fraction) vs in-memory "
      "viper baseline");
  for (const char* ds : {"ycsb", "face"}) {
    const std::vector<Key> keys = LoadKeys(ds, n);
    const std::vector<Op> ops =
        GenerateOps(WorkloadSpec::ReadOnly(), lookups, keys, {});
    for (const char* index_name : {"BTree", "PGM", "ALEX"}) {
      // In-memory baseline: same index, same op stream, same executor.
      if (auto store = MakeStore(ctx, index_name, keys)) {
        RunStats stats = RunStoreOps(store.get(), ops, ExecOptions(ctx));
        ctx.sink.Add(ResultRow(index_name)
                         .Label("dataset", ds)
                         .Label("backend", "viper")
                         .Label("pool_fraction", "dram")
                         .Metric("mops", stats.mops)
                         .Metric("p50_ns",
                                 static_cast<double>(stats.point.P50()))
                         .Metric("p99_ns",
                                 static_cast<double>(stats.point.P99())));
      }
      for (double frac : kPoolFractions) {
        DiskStore::Config cfg = DiskConfig(ctx, keys.size(), frac,
                                           file_id++);
        DiskStore store(MakeIndex(index_name), cfg);
        if (!store.ok() || !store.BulkLoad(keys)) {
          ctx.sink.Add(ResultRow(index_name)
                           .Label("dataset", ds)
                           .Label("backend", "disk")
                           .Status("load_failed")
                           .Label("error", store.ok() ? "bulk load failed"
                                                      : store.error()));
          continue;
        }
        const StoreIoStats before = store.IoStats();
        RunStats stats = RunStoreOps(&store, ops, ExecOptions(ctx));
        const StoreIoStats after = store.IoStats();
        const double executed =
            stats.ops_executed > 0 ? static_cast<double>(stats.ops_executed)
                                   : 1.0;
        const uint64_t hits = after.pool_hits - before.pool_hits;
        const uint64_t misses = after.pool_misses - before.pool_misses;
        ctx.sink.Add(
            ResultRow(index_name)
                .Label("dataset", ds)
                .Label("backend", "disk")
                .Label("pool_fraction", std::to_string(frac))
                .Metric("pool_pages", static_cast<double>(cfg.pool_pages))
                .Metric("mops", stats.mops)
                .Metric("p50_ns", static_cast<double>(stats.point.P50()))
                .Metric("p99_ns", static_cast<double>(stats.point.P99()))
                .Metric("hit_rate",
                        hits + misses == 0
                            ? 0
                            : static_cast<double>(hits) /
                                  static_cast<double>(hits + misses))
                .Metric("fetches_per_lookup",
                        static_cast<double>(misses) / executed));
      }
    }
  }

  // ---- Conformance: dataset ~20x the pool ---------------------------
  ctx.sink.Section(
      "conformance: disk(5% pool) vs viper — Get payloads and Scan keys "
      "must be identical");
  for (const char* index_name : {"BTree", "PGM"}) {
    const std::vector<Key> keys = LoadKeys("ycsb", n);
    auto viper = MakeStore(ctx, index_name, keys);
    DiskStore::Config cfg = DiskConfig(ctx, keys.size(), 0.05, file_id++);
    DiskStore disk(MakeIndex(index_name), cfg);
    if (viper == nullptr || !disk.ok() || !disk.BulkLoad(keys)) {
      ctx.sink.Add(ResultRow(index_name).Status("load_failed"));
      continue;
    }
    Rng rng(13);
    size_t mismatches = 0;
    std::vector<uint8_t> got_v(viper->value_size());
    std::vector<uint8_t> got_d(disk.value_size());
    const size_t checks = std::min<size_t>(lookups, 20'000);
    for (size_t i = 0; i < checks; ++i) {
      // Mix updates in so conformance covers the put path too.
      Key key = keys[rng.NextUnder(keys.size())];
      if (i % 8 == 0) {
        if (viper->PutSynthetic(key) != disk.PutSynthetic(key)) {
          ++mismatches;
          continue;
        }
      }
      bool fv = viper->Get(key, got_v.data());
      bool fd = disk.Get(key, got_d.data());
      if (fv != fd || !fv || got_v != got_d) ++mismatches;
    }
    size_t scan_mismatches = 0;
    for (size_t i = 0; i < 32; ++i) {
      Key from = keys[rng.NextUnder(keys.size())];
      std::vector<Key> kv, kd;
      viper->Scan(from, 100, &kv);
      disk.Scan(from, 100, &kd);
      if (kv != kd) ++scan_mismatches;
    }
    ctx.sink.Add(ResultRow(index_name)
                     .Label("dataset", "ycsb")
                     .Label("data_pages_over_pool",
                            std::to_string(DataPages(keys.size(), cfg) /
                                           cfg.pool_pages))
                     .Metric("get_checks", static_cast<double>(checks))
                     .Metric("get_mismatches",
                             static_cast<double>(mismatches))
                     .Metric("scan_mismatches",
                             static_cast<double>(scan_mismatches))
                     .Metric("conformance_ok",
                             mismatches + scan_mismatches == 0 ? 1 : 0));
  }

  // ---- Batch page-grouping ------------------------------------------
  ctx.sink.Section(
      "page-granular GetBatch grouping vs single-key Gets under a "
      "thrashing pool (page-interleaved probes)");
  {
    const std::vector<Key> keys = LoadKeys("ycsb", n);
    DiskStore::Config cfg = DiskConfig(ctx, keys.size(), 0.0, file_id++);
    cfg.pool_pages = 2;  // Thrash on purpose: alternating pages evict.
    DiskStore store(MakeIndex("PGM"), cfg);
    if (store.ok() && store.BulkLoad(keys)) {
      // Probes interleave 8 pages round-robin (p0,p1,...,p7,p0,...): the
      // worst case for an un-grouped pool, the best case for grouping.
      const size_t slots = store.slots_per_page();
      const size_t batch = 64;
      std::vector<Key> probes;
      Rng rng(17);
      while (probes.size() < std::min<size_t>(lookups, 50'000)) {
        size_t base_page =
            rng.NextUnder(std::max<size_t>(1, keys.size() / slots - 8));
        for (size_t i = 0; i < batch; ++i) {
          size_t idx = (base_page + i % 8) * slots + (i / 8) % slots;
          probes.push_back(keys[std::min(idx, keys.size() - 1)]);
        }
      }
      std::vector<uint8_t> value(store.value_size());
      std::vector<uint8_t*> outs(batch, value.data());
      std::unique_ptr<bool[]> found(new bool[batch]);
      StoreIoStats s0 = store.IoStats();
      for (const Key& k : probes) store.Get(k, value.data());
      StoreIoStats s1 = store.IoStats();
      for (size_t i = 0; i + batch <= probes.size(); i += batch) {
        store.GetBatch(std::span<const Key>(probes.data() + i, batch),
                       outs.data(), found.get());
      }
      StoreIoStats s2 = store.IoStats();
      const double np = static_cast<double>(probes.size());
      ctx.sink.Add(ResultRow("single_get")
                       .Label("pool_pages", "2")
                       .Metric("fetches_per_lookup",
                               static_cast<double>(s1.pool_misses -
                                                   s0.pool_misses) /
                                   np));
      ctx.sink.Add(ResultRow("getbatch_64")
                       .Label("pool_pages", "2")
                       .Metric("fetches_per_lookup",
                               static_cast<double>(s2.pool_misses -
                                                   s1.pool_misses) /
                                   np));
    } else {
      ctx.sink.Add(ResultRow("PGM").Status("load_failed"));
    }
  }

  // ---- Write path ----------------------------------------------------
  ctx.sink.Section("write path: fsync barriers per put (payload + header)");
  {
    const std::vector<Key> keys = LoadKeys("ycsb", n);
    std::vector<Key> load, inserts;
    SplitLoadAndInserts(keys, 4, &load, &inserts);
    DiskStore::Config cfg = DiskConfig(ctx, keys.size(), 0.25, file_id++);
    DiskStore store(MakeIndex("ALEX"), cfg);
    if (store.ok() && store.BulkLoad(load)) {
      const size_t puts = std::min<size_t>(inserts.size(),
                                           std::max<size_t>(lookups / 4, 1));
      StoreIoStats s0 = store.IoStats();
      Timer timer;
      for (size_t i = 0; i < puts; ++i) store.PutSynthetic(inserts[i]);
      const double secs = static_cast<double>(timer.ElapsedNanos()) / 1e9;
      StoreIoStats s1 = store.IoStats();
      ctx.sink.Add(ResultRow("ALEX")
                       .Label("dataset", "ycsb")
                       .Metric("puts", static_cast<double>(puts))
                       .Metric("barriers_per_put",
                               static_cast<double>(s1.barriers -
                                                   s0.barriers) /
                                   static_cast<double>(puts))
                       .Metric("kops",
                               secs > 0 ? static_cast<double>(puts) / secs /
                                              1e3
                                        : 0));
    } else {
      ctx.sink.Add(ResultRow("ALEX").Status("load_failed"));
    }
  }

  // ---- Overlapped I/O: io-engine sweep ------------------------------
  // Cold 5% pool, GetBatch(64) probes spread one-key-per-page: the
  // serial engine blocks once per page, the overlapped engines once per
  // batch — `waits_per_batch` and `io_max_inflight` are the whole story.
  ctx.sink.Section(
      "overlapped I/O: engine sweep on cold 5% pool, GetBatch(64) with "
      "one key per page (blocking waits per batch)");
  {
    std::vector<std::string> engines = {"serial", "threads"};
    if (IoUringAvailable()) engines.push_back("uring");
    const std::vector<Key> keys = LoadKeys("ycsb", n);
    const size_t batch = 64;
    for (const std::string& engine : engines) {
      DiskStore::Config cfg = DiskConfig(ctx, keys.size(), 0.05, file_id++);
      cfg.io_engine = engine;
      DiskStore store(MakeIndex("PGM"), cfg);
      if (!store.ok() || !store.BulkLoad(keys)) {
        ctx.sink.Add(ResultRow(engine.c_str()).Status("load_failed"));
        continue;
      }
      const size_t slots = store.slots_per_page();
      const size_t data_pages = keys.size() / slots;
      std::vector<Key> probes;
      Rng rng(23);
      while (probes.size() < std::min<size_t>(lookups, 20'000)) {
        // 64 keys, 64 distinct pages: a worst case for blocking preads.
        const size_t base = rng.NextUnder(std::max<size_t>(1, data_pages));
        for (size_t i = 0; i < batch; ++i) {
          const size_t page = (base + i * 17) % data_pages;
          probes.push_back(keys[std::min(page * slots + i % slots,
                                         keys.size() - 1)]);
        }
      }
      std::vector<uint8_t> value(store.value_size());
      std::vector<uint8_t*> outs(batch, value.data());
      std::unique_ptr<bool[]> found(new bool[batch]);
      const StoreIoStats s0 = store.IoStats();
      Timer timer;
      size_t batches = 0;
      for (size_t i = 0; i + batch <= probes.size(); i += batch) {
        store.GetBatch(std::span<const Key>(probes.data() + i, batch),
                       outs.data(), found.get());
        ++batches;
      }
      const double secs = static_cast<double>(timer.ElapsedNanos()) / 1e9;
      const StoreIoStats s1 = store.IoStats();
      const double nb = batches > 0 ? static_cast<double>(batches) : 1.0;
      ctx.sink.Add(
          ResultRow(engine.c_str())
              .Label("engine", std::string(store.io_engine_name()))
              .Label("pool_fraction", "0.05")
              .Metric("batches", nb)
              .Metric("blocking_waits",
                      static_cast<double>(s1.io_waits - s0.io_waits))
              .Metric("waits_per_batch",
                      static_cast<double>(s1.io_waits - s0.io_waits) / nb)
              .Metric("io_max_inflight",
                      static_cast<double>(s1.io_max_inflight))
              .Metric("fetches_per_lookup",
                      static_cast<double>(s1.pool_misses - s0.pool_misses) /
                          (nb * static_cast<double>(batch)))
              .Metric("kops", secs > 0 ? nb * static_cast<double>(batch) /
                                             secs / 1e3
                                       : 0));
    }
  }

  // ---- Error-bound readahead ----------------------------------------
  // A sequential key sweep on a cold 5% pool: the model's predicted span
  // (slot +/- err, capped) rides each demand miss in one engine batch,
  // converting the next lookups' misses into readahead hits.
  ctx.sink.Section(
      "error-bound readahead: sequential sweep, cold 5% pool (PGM) — "
      "readahead pages staged vs demand misses saved");
  {
    const std::vector<Key> keys = LoadKeys("ycsb", n);
    for (size_t ra : {size_t{0}, size_t{4}, size_t{16}}) {
      DiskStore::Config cfg = DiskConfig(ctx, keys.size(), 0.05, file_id++);
      cfg.readahead_max_pages = ra;
      DiskStore store(MakeIndex("PGM"), cfg);
      if (!store.ok() || !store.BulkLoad(keys)) {
        ctx.sink.Add(ResultRow("PGM").Status("load_failed"));
        continue;
      }
      const size_t sweep = std::min<size_t>(keys.size(), lookups);
      std::vector<uint8_t> value(store.value_size());
      const StoreIoStats s0 = store.IoStats();
      Timer timer;
      for (size_t i = 0; i < sweep; ++i) store.Get(keys[i], value.data());
      const double secs = static_cast<double>(timer.ElapsedNanos()) / 1e9;
      const StoreIoStats s1 = store.IoStats();
      const double nl = sweep > 0 ? static_cast<double>(sweep) : 1.0;
      const uint64_t staged = s1.readahead_pages - s0.readahead_pages;
      ctx.sink.Add(
          ResultRow("PGM")
              .Label("readahead_max_pages", std::to_string(ra))
              .Metric("fetches_per_lookup",
                      static_cast<double>(s1.pool_misses - s0.pool_misses) /
                          nl)
              .Metric("readahead_pages", static_cast<double>(staged))
              .Metric("readahead_hits",
                      static_cast<double>(s1.readahead_hits -
                                          s0.readahead_hits))
              .Metric("readahead_wasted_frac",
                      staged == 0
                          ? 0
                          : static_cast<double>(s1.readahead_wasted -
                                                s0.readahead_wasted) /
                                static_cast<double>(staged))
              .Metric("kops", secs > 0 ? nl / secs / 1e3 : 0));
    }
  }

  // ---- Group commit ---------------------------------------------------
  // Concurrent writers sharing one leader-issued fdatasync pair: the
  // single-put protocol's floor is 2.0 barriers/put; grouping divides it
  // by the achieved group size.
  ctx.sink.Section(
      "group commit: fsync barriers per put vs writer count and group "
      "size (floor without grouping: 2.0)");
  {
    const std::vector<Key> keys = LoadKeys("ycsb", n);
    std::vector<Key> load, inserts;
    SplitLoadAndInserts(keys, 4, &load, &inserts);
    struct GroupPoint {
      size_t writers;
      size_t group_ops;
    };
    for (const GroupPoint pt : {GroupPoint{1, 1}, GroupPoint{4, 1},
                                GroupPoint{4, 8}, GroupPoint{4, 32}}) {
      DiskStore::Config cfg = DiskConfig(ctx, keys.size(), 0.25, file_id++);
      cfg.group_commit_ops = pt.group_ops;
      cfg.group_commit_delay_us = 200;
      DiskStore store(MakeIndex("BTree"), cfg);
      if (!store.ok() || !store.BulkLoad(load)) {
        ctx.sink.Add(ResultRow("BTree").Status("load_failed"));
        continue;
      }
      const size_t per_writer =
          std::min(inserts.size() / pt.writers,
                   std::max<size_t>(lookups / 4, 64) / pt.writers);
      const size_t puts = per_writer * pt.writers;
      const StoreIoStats s0 = store.IoStats();
      const uint64_t syncs0 = store.pages().syncs();
      Timer timer;
      std::vector<std::thread> writers;
      for (size_t t = 0; t < pt.writers; ++t) {
        writers.emplace_back([&, t] {
          for (size_t i = 0; i < per_writer; ++i) {
            store.PutSynthetic(inserts[t * per_writer + i]);
          }
        });
      }
      for (auto& th : writers) th.join();
      const double secs = static_cast<double>(timer.ElapsedNanos()) / 1e9;
      const StoreIoStats s1 = store.IoStats();
      const double np = puts > 0 ? static_cast<double>(puts) : 1.0;
      const uint64_t groups = s1.group_commits - s0.group_commits;
      ctx.sink.Add(
          ResultRow("BTree")
              .Label("writers", std::to_string(pt.writers))
              .Label("group_commit_ops", std::to_string(pt.group_ops))
              .Metric("puts", np)
              .Metric("barriers_per_put",
                      static_cast<double>(store.pages().syncs() - syncs0) /
                          np)
              .Metric("achieved_group_size",
                      groups == 0 ? 1.0
                                  : static_cast<double>(s1.grouped_puts -
                                                        s0.grouped_puts) /
                                        static_cast<double>(groups))
              .Metric("kops", secs > 0 ? np / secs / 1e3 : 0));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    disk_tier, "disk_tier", "disk tier",
    "Disk-resident page store behind the learned indexes: buffer-pool "
    "fraction sweep, backend conformance, batch page-grouping, io-engine "
    "sweep, error-bound readahead, group commit",
    "with models in DRAM and records on disk, lookup cost is page fetches "
    "per lookup: hit rate tracks the pool fraction, batches amortize "
    "fetches page-granularly, overlapped engines collapse per-page "
    "blocking waits into one wait per batch, the model's error bound "
    "doubles as a readahead span, and group commit divides the 2-barrier "
    "put floor by the achieved group size",
    RunDiskTier)

}  // namespace
}  // namespace pieces::bench
