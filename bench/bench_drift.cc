// drift: sustained-QPS serving under distribution drift, inline vs
// background retraining. The paper's update benchmarks (Figs. 13/15/18)
// measure throughput, where an occasional stop-the-world segment retrain
// averages away; this experiment measures open-loop *tail latency* under
// drifting workloads (workload/drift.h), where every inline retrain is a
// serving-thread stall that lands squarely on p99/p999. With the
// background maintainer (service/maintainer.h) the same retrains run
// off-thread and publish via the index's RCU swap, so the tail should
// hold while throughput stays comparable.
//
// Three sections:
//   1. inline vs background — FITing-tree-buf and XIndex under the
//      key-shift drift at fixed offered QPS; the paired rows isolate the
//      maintainer as the only difference;
//   2. retraining budget sweep — the segments_per_sec token bucket from
//      unlimited down to starved, showing throttled candidates turning
//      into inline (hard-cap) stalls as the budget shrinks;
//   3. drift shapes — all three drift kinds under background maintenance.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/loadgen.h"
#include "workload/drift.h"

namespace pieces::bench {
namespace {

using service::AdmissionPolicy;
using service::KvService;
using service::LoadGenOptions;
using service::LoadGenResult;
using service::MaintenanceConfig;
using service::ServiceConfig;
using service::ServiceStats;

struct DriftServiceOptions {
  size_t shards = 2;
  size_t headroom_bytes = 0;
  MaintenanceConfig maintenance;
};

std::unique_ptr<KvService> MakeDriftService(const std::string& index_name,
                                            const std::vector<Key>& load,
                                            const DriftServiceOptions& opt) {
  ServiceConfig cfg;
  cfg.num_shards = opt.shards;
  cfg.queue_capacity = 4096;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.store.value_size = 200;
  cfg.store.pmem_capacity =
      (load.size() * 208 * 4) / std::max<size_t>(1, opt.shards) +
      opt.headroom_bytes;
  cfg.store.read_latency_ns = NvmReadLatencyNs();
  cfg.store.write_latency_ns = NvmWriteLatencyNs();
  cfg.maintenance = opt.maintenance;
  auto svc = std::make_unique<KvService>(index_name, cfg, load);
  if (!svc->BulkLoad(load)) return nullptr;
  svc->Start();
  return svc;
}

// Sums the maintainer counters over shards (zero in inline mode).
void AddMaintainerMetrics(ResultRow& row, const ServiceStats& stats) {
  uint64_t published = 0, aborted = 0, throttled = 0;
  for (const auto& s : stats.shards) {
    published += s.bg_published;
    aborted += s.bg_aborted;
    throttled += s.bg_throttled;
  }
  row.Metric("bg_published", static_cast<double>(published))
      .Metric("bg_aborted", static_cast<double>(aborted))
      .Metric("bg_throttled", static_cast<double>(throttled));
}

ResultRow DriftRow(const std::string& name, const LoadGenResult& r) {
  ResultRow row(name);
  row.Metric("offered_qps", r.offered_qps)
      .Metric("achieved_qps", r.achieved_qps)
      .Metric("p50_ns", static_cast<double>(r.point_latency.P50()))
      .Metric("p99_ns", static_cast<double>(r.point_latency.P99()))
      .Metric("p999_ns", static_cast<double>(r.point_latency.P999()));
  return row;
}

void RunDrift(Context& ctx) {
  const bool smoke = ctx.base_keys <= 8192;
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 31);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);

  const double duration =
      ctx.duration_seconds > 0 ? ctx.duration_seconds : (smoke ? 0.12 : 1.0);
  const size_t clients = smoke ? 2 : std::max<size_t>(2, ctx.max_threads);
  const double target_qps = smoke ? 20'000 : 150'000;
  const size_t headroom =
      static_cast<size_t>(1.5e9 * std::max(duration, 0.25));

  DriftSpec shift;
  shift.kind = DriftKind::kKeyShift;
  std::vector<Op> shift_ops = GenerateDriftOps(shift, ctx.ops, load, inserts);

  // 1. Inline vs background under key-shift. The only difference between
  // the paired rows is MaintenanceConfig::enabled: same index, same op
  // stream, same offered load.
  ctx.sink.Section("key-shift drift @" +
                   std::to_string(static_cast<int>(target_qps)) +
                   " qps: inline vs background retraining");
  const std::vector<std::string> indexes = {"FITing-tree-buf", "XIndex"};
  for (const std::string& name : indexes) {
    for (bool background : {false, true}) {
      DriftServiceOptions opt;
      opt.headroom_bytes = headroom;
      opt.maintenance.enabled = background;
      auto svc = MakeDriftService(name, load, opt);
      if (svc == nullptr) {
        ctx.sink.Add(ResultRow(name).Status("bulk_load_failed"));
        continue;
      }
      LoadGenOptions lg;
      lg.target_qps = target_qps;
      lg.duration_seconds = duration;
      lg.clients = clients;
      LoadGenResult r = RunOpenLoop(svc.get(), shift_ops, lg);
      ServiceStats stats = svc->Stats();
      svc->Shutdown();
      ResultRow row = DriftRow(name, r);
      row.Label("mode", background ? "background" : "inline");
      AddMaintainerMetrics(row, stats);
      ctx.sink.Add(std::move(row));
    }
  }

  // 2. Budget sweep: XIndex under key-shift, shrinking the token bucket.
  // Starved budgets push segments to the hard cap, where the serving
  // thread compacts inline anyway — throttled counts convert back into
  // tail latency.
  ctx.sink.Section("retraining budget sweep (XIndex, key-shift)");
  const std::vector<double> budgets =
      smoke ? std::vector<double>{0, 8} : std::vector<double>{0, 256, 32, 8};
  for (double budget : budgets) {
    DriftServiceOptions opt;
    opt.headroom_bytes = headroom;
    opt.maintenance.enabled = true;
    opt.maintenance.segments_per_sec = budget;
    auto svc = MakeDriftService("XIndex", load, opt);
    if (svc == nullptr) continue;
    LoadGenOptions lg;
    lg.target_qps = target_qps;
    lg.duration_seconds = duration;
    lg.clients = clients;
    LoadGenResult r = RunOpenLoop(svc.get(), shift_ops, lg);
    ServiceStats stats = svc->Stats();
    svc->Shutdown();
    ResultRow row = DriftRow("XIndex", r);
    row.Label("segments_per_sec",
              budget <= 0 ? "unlimited" : std::to_string(budget));
    AddMaintainerMetrics(row, stats);
    ctx.sink.Add(std::move(row));
  }

  // 3. Drift shapes under background maintenance.
  ctx.sink.Section("drift shapes under background retraining");
  const std::vector<DriftKind> kinds =
      smoke ? std::vector<DriftKind>{DriftKind::kKeyShift}
            : std::vector<DriftKind>{DriftKind::kKeyShift,
                                     DriftKind::kAppendThenRandom,
                                     DriftKind::kDiurnal};
  for (const std::string& name : indexes) {
    for (DriftKind kind : kinds) {
      DriftSpec spec;
      spec.kind = kind;
      std::vector<Op> ops = GenerateDriftOps(spec, ctx.ops, load, inserts);
      DriftServiceOptions opt;
      opt.headroom_bytes = headroom;
      opt.maintenance.enabled = true;
      auto svc = MakeDriftService(name, load, opt);
      if (svc == nullptr) continue;
      LoadGenOptions lg;
      lg.target_qps = target_qps;
      lg.duration_seconds = duration;
      lg.clients = clients;
      LoadGenResult r = RunOpenLoop(svc.get(), ops, lg);
      ServiceStats stats = svc->Stats();
      svc->Shutdown();
      ResultRow row = DriftRow(name, r);
      row.Label("drift", DriftKindName(kind));
      AddMaintainerMetrics(row, stats);
      ctx.sink.Add(std::move(row));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    drift, "drift", "Drift",
    "Tail latency under distribution drift: inline vs background retraining",
    "Drifting key distributions force localized segment retrains; done "
    "inline they are stop-the-world stalls that dominate p99/p999, while "
    "the background maintainer's prepare-off-thread + RCU-publish holds "
    "the tail at the same offered load",
    RunDrift)

}  // namespace
}  // namespace pieces::bench
