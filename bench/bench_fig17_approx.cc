// Fig. 17(a)+(b): the approximation-algorithm dimension in isolation.
// (a) relationship between a leaf's average error and its in-leaf lookup
//     time — lower error, faster leaf search;
// (b) relationship between average error and the number of leaves each
//     algorithm produces at matched settings.
// Paper findings: Opt-PLA produces ~2 orders of magnitude fewer leaves
// than LSA at comparable error; LSA-gap escapes the error-vs-leaf-count
// conflict entirely by reshaping the CDF (low error AND few leaves).
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/search.h"
#include "common/timer.h"
#include "pla/lsa.h"
#include "pla/optimal_pla.h"
#include "pla/segment.h"

namespace pieces::bench {
namespace {

// Measures in-leaf lookup cost for a PLA layout: locate the segment (not
// timed), then search the true rank inside the error window (timed).
double MeasurePlaLeafNs(const PlaResult& pla, const std::vector<Key>& keys,
                        size_t lookups) {
  Rng rng(7);
  // Pre-resolve lookup keys and their segments so timing covers only the
  // in-leaf search.
  std::vector<std::pair<Key, const Segment*>> probes;
  probes.reserve(lookups);
  for (size_t i = 0; i < lookups; ++i) {
    Key k = keys[rng.NextUnder(keys.size())];
    probes.push_back({k, &pla.segments[FindSegment(pla.segments, k)]});
  }
  size_t err = pla.max_error + 1;
  Timer timer;
  uint64_t sink = 0;
  for (const auto& [k, seg] : probes) {
    size_t pred = seg->PredictRank(k);
    size_t lo = pred > err ? pred - err : 0;
    size_t hi = std::min(keys.size(), pred + err + 1);
    sink += BinarySearchLowerBound(keys.data(), lo, hi, k);
  }
  double ns = static_cast<double>(timer.ElapsedNanos()) / lookups;
  if (sink == 42) std::printf("#");  // Defeat dead-code elimination.
  return ns;
}

// Materialized gapped arrays for an LSA-gap layout.
struct GappedArrays {
  std::vector<std::vector<Key>> slots;  // Per segment, sentinel-filled.
  std::vector<std::vector<uint8_t>> occ;
};

GappedArrays Materialize(const LsaGapResult& gap,
                         const std::vector<Key>& keys) {
  GappedArrays arrays;
  for (const GappedSegment& g : gap.segments) {
    std::vector<Key> slot_keys(g.capacity, ~0ull);
    std::vector<uint8_t> occ(g.capacity, 0);
    for (size_t i = 0; i < g.count; ++i) {
      slot_keys[g.slots[i]] = keys[g.base_rank + i];
      occ[g.slots[i]] = 1;
    }
    Key carry = ~0ull;
    for (size_t i = g.capacity; i-- > 0;) {
      if (occ[i]) {
        carry = slot_keys[i];
      } else {
        slot_keys[i] = carry;
      }
    }
    arrays.slots.push_back(std::move(slot_keys));
    arrays.occ.push_back(std::move(occ));
  }
  return arrays;
}

double MeasureGapLeafNs(const LsaGapResult& gap, const GappedArrays& arrays,
                        const std::vector<Key>& keys, size_t lookups) {
  Rng rng(7);
  std::vector<std::pair<Key, size_t>> probes;
  probes.reserve(lookups);
  // Segment routing mirrors FindSegment: binary search on first_key.
  std::vector<Key> firsts;
  for (const GappedSegment& g : gap.segments) firsts.push_back(g.first_key);
  for (size_t i = 0; i < lookups; ++i) {
    Key k = keys[rng.NextUnder(keys.size())];
    size_t seg = BinarySearchLowerBound(firsts.data(), 0, firsts.size(), k);
    if (seg == firsts.size() || (firsts[seg] > k && seg > 0)) --seg;
    probes.push_back({k, seg});
  }
  Timer timer;
  uint64_t sink = 0;
  for (const auto& [k, seg] : probes) {
    const GappedSegment& g = gap.segments[seg];
    const std::vector<Key>& slot_keys = arrays.slots[seg];
    size_t hint = g.model.PredictClamped(k, g.capacity);
    sink += ExponentialSearchLowerBound(slot_keys.data(), g.capacity, hint,
                                        k);
  }
  double ns = static_cast<double>(timer.ElapsedNanos()) / lookups;
  if (sink == 42) std::printf("#");
  return ns;
}

ResultRow AlgoRow(const char* algo, size_t param, size_t leaves,
                  double mean_err, double ns) {
  return ResultRow(algo)
      .Label("param", std::to_string(param))
      .Metric("leaves", static_cast<double>(leaves))
      .Metric("mean_err", mean_err)
      .Metric("in_leaf_ns", ns);
}

void RunFig17Approx(Context& ctx) {
  const size_t n = ctx.base_keys;
  const size_t lookups = std::max<size_t>(1000, ctx.ops / 2);
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);

  for (size_t seg : {256, 1024, 4096, 16384}) {
    PlaResult lsa = BuildLsa(keys.data(), keys.size(), seg);
    double ns = MeasurePlaLeafNs(lsa, keys, lookups);
    ctx.sink.Add(
        AlgoRow("LSA", seg, lsa.segments.size(), lsa.mean_error, ns));
  }
  for (size_t eps : {8, 32, 128, 512}) {
    PlaResult opt = BuildOptimalPla(keys.data(), keys.size(), eps);
    double ns = MeasurePlaLeafNs(opt, keys, lookups);
    ctx.sink.Add(
        AlgoRow("Opt-PLA", eps, opt.segments.size(), opt.mean_error, ns));
  }
  for (size_t seg : {256, 1024, 4096, 16384}) {
    LsaGapResult gap = BuildLsaGap(keys.data(), keys.size(), seg, 0.7);
    GappedArrays arrays = Materialize(gap, keys);
    double ns = MeasureGapLeafNs(gap, arrays, keys, lookups);
    ctx.sink.Add(
        AlgoRow("LSA-gap", seg, gap.segments.size(), gap.mean_error, ns));
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig17ab, "fig17ab", "Fig. 17(a)(b)",
    "Fig. 17(a)(b): approximation algorithms in isolation",
    "Opt-PLA needs far fewer leaves than LSA at equal error; LSA-gap gets "
    "low error AND few leaves simultaneously",
    RunFig17Approx)

}  // namespace
}  // namespace pieces::bench
