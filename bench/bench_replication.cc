// replication: primary->replica shipping atop the commit protocol — what
// a shadow replica costs while healthy, and what it buys when the
// primary dies. The shipper drains the commit log in batches through the
// transport; lag (log tail minus applied) is the staleness budget for
// replica reads and the loss budget for a crash failover, so the first
// question is how lag tracks the offered write rate. The second is the
// failover itself: promotion reuses the crash-recovery path
// (StoreBackend::Recover rebuilds the in-memory index from the replica's
// own durable media), so the outage window is index-dependent — exactly
// the rebuild asymmetry the recovery experiment measures, now as a
// service-level availability number.
//
// Three sections:
//   1. replication lag vs write rate — async acks, write-heavy open
//      loop at swept offered rates (0 = saturate) with a transport
//      delay per shipped batch; a sampler thread polls ServiceStats
//      during the run for mean/max lag across shards;
//   2. ack mode cost — the same saturating write load with kLocal
//      (async) vs kReplicated (semi-sync) acks: throughput and tail
//      price of "kOk means on the replica too";
//   3. failover outage window vs index choice — moderate open-loop
//      mixed load, a graceful FailOverShard(0) mid-run; outage wall
//      time, the index-rebuild share of it, lost records (0 when
//      graceful) and requests that retried across the swap, per index
//      family.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "service/loadgen.h"

namespace pieces::bench {
namespace {

using service::AdmissionPolicy;
using service::FailoverReport;
using service::KvService;
using service::LoadGenOptions;
using service::LoadGenResult;
using service::ServiceConfig;
using AckMode = replication::ReplicationConfig::AckMode;

std::unique_ptr<KvService> MakeService(const std::string& index_name,
                                       const ServiceConfig& cfg,
                                       const std::vector<Key>& load) {
  auto svc = std::make_unique<KvService>(index_name, cfg, load);
  if (!svc->BulkLoad(load)) return nullptr;
  svc->Start();
  return svc;
}

ServiceConfig BaseConfig(size_t shards, const std::vector<Key>& load,
                         size_t headroom_bytes) {
  ServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.queue_capacity = 1024;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.store.value_size = 200;
  // Replica stores are sized identically to primaries, so the headroom
  // covers both copies of the write stream.
  cfg.store.pmem_capacity =
      (load.size() * 208 * 4) / std::max<size_t>(1, shards) + headroom_bytes;
  cfg.store.read_latency_ns = NvmReadLatencyNs();
  cfg.store.write_latency_ns = NvmWriteLatencyNs();
  cfg.replication.enabled = true;
  cfg.replication.ship_batch = 64;
  cfg.replication.ship_interval_us = 100;
  return cfg;
}

// Polls ServiceStats during a run and tracks the summed replication lag
// across shards. Sampling is cheap (a snapshot copy per poll) and stays
// off the request path.
struct LagSampler {
  explicit LagSampler(KvService* svc) : svc_(svc) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        service::ServiceStats stats = svc_->Stats();
        uint64_t lag = 0;
        for (const auto& sh : stats.shards) lag += sh.repl_lag;
        sum_ += lag;
        ++samples_;
        max_ = std::max(max_, lag);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  ~LagSampler() {
    if (thread_.joinable()) Stop();
  }
  void Stop() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
  double Mean() const { return samples_ ? double(sum_) / samples_ : 0; }
  double Max() const { return double(max_); }

  KvService* svc_;
  std::atomic<bool> stop_{false};
  uint64_t sum_ = 0;
  uint64_t samples_ = 0;
  uint64_t max_ = 0;
  std::thread thread_;
};

void RunReplication(Context& ctx) {
  const bool smoke = ctx.base_keys <= 8192;
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 41);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);

  const double duration =
      ctx.duration_seconds > 0 ? ctx.duration_seconds : (smoke ? 0.12 : 1.0);
  const size_t clients = smoke ? 2 : std::max<size_t>(4, ctx.max_threads);
  const size_t headroom =
      static_cast<size_t>(1.5e9 * std::max(duration, 0.25));

  // 1. Replication lag vs offered write rate. Async acks (writes return
  // at local durability), a fixed per-batch transport delay standing in
  // for the network round trip. At low rates the shipper drains between
  // arrivals and lag stays near zero; past the link's drain rate the log
  // runs ahead of the replica and lag grows with the rate — that
  // distance is both replica-read staleness and the crash-loss window.
  std::vector<Op> write_ops = GenerateOps(
      WorkloadSpec::WriteOnly(), ctx.ops, load, inserts, 43);
  ctx.sink.Section("replication lag vs offered write rate (async acks)");
  const std::string lag_index = "ALEX";
  const std::vector<size_t> rates =
      smoke ? std::vector<size_t>{5'000, 0}
            : std::vector<size_t>{50'000, 200'000, 0};
  for (size_t rate : rates) {
    ServiceConfig cfg = BaseConfig(2, load, headroom);
    cfg.replication.transport_delay_us = smoke ? 50 : 200;
    auto svc = MakeService(lag_index, cfg, load);
    if (svc == nullptr) {
      ctx.sink.Add(ResultRow("lag").Status("bulk_load_failed"));
      continue;
    }
    LoadGenOptions lg;
    lg.target_qps = rate;
    lg.duration_seconds = duration;
    lg.clients = clients;
    LoadGenResult r;
    double lag_mean = 0;
    double lag_max = 0;
    {
      LagSampler sampler(svc.get());
      r = RunOpenLoop(svc.get(), write_ops, lg);
      sampler.Stop();
      lag_mean = sampler.Mean();
      lag_max = sampler.Max();
    }
    service::ServiceStats stats = svc->Stats();
    uint64_t batches = 0;
    for (const auto& sh : stats.shards) batches += sh.repl_batches;
    svc->Shutdown();
    ctx.sink.Add(
        ResultRow(rate == 0 ? "saturate" : std::to_string(rate) + "qps")
            .Label("index", lag_index)
            .Metric("achieved_qps", r.achieved_qps)
            .Metric("lag_mean_records", lag_mean)
            .Metric("lag_max_records", lag_max)
            .Metric("batches_shipped", static_cast<double>(batches))
            .Metric("p99_ns", static_cast<double>(r.point_latency.P99())));
  }

  // 2. Ack mode cost: what semi-sync acks charge for turning kOk into
  // "applied on the replica too". Every write waits out the shipper's
  // batch boundary, so throughput drops and tails stretch by roughly the
  // ship interval plus the transport delay.
  ctx.sink.Section("ack mode: async (kLocal) vs semi-sync (kReplicated)");
  for (AckMode ack : {AckMode::kLocal, AckMode::kReplicated}) {
    ServiceConfig cfg = BaseConfig(2, load, headroom);
    cfg.replication.ack = ack;
    auto svc = MakeService(lag_index, cfg, load);
    if (svc == nullptr) {
      ctx.sink.Add(ResultRow("ack").Status("bulk_load_failed"));
      continue;
    }
    LoadGenOptions lg;
    lg.target_qps = 0;  // saturate
    lg.duration_seconds = duration;
    lg.clients = clients;
    LoadGenResult r = RunOpenLoop(svc.get(), write_ops, lg);
    service::ServiceStats stats = svc->Stats();
    uint64_t ack_failures = 0;
    for (const auto& sh : stats.shards) ack_failures += sh.repl_ack_failures;
    svc->Shutdown();
    ctx.sink.Add(
        ResultRow(ack == AckMode::kLocal ? "async-kLocal" : "semisync-kReplicated")
            .Label("index", lag_index)
            .Metric("qps", r.achieved_qps)
            .Metric("p99_ns", static_cast<double>(r.point_latency.P99()))
            .Metric("ack_failures", static_cast<double>(ack_failures))
            .Metric("retried", static_cast<double>(r.retried)));
  }

  // 3. Failover outage window vs index choice. A graceful promotion
  // (ship the tail, then recover the replica store) is lossless, so the
  // per-index difference is the rebuild: promotion runs the same
  // StoreBackend::Recover as crash restart, and index families differ
  // sharply in how fast they rebuild from a sorted record scan. The
  // outage is charged to in-flight requests as retries and tail latency
  // measured from scheduled arrival (no coordinated omission).
  ctx.sink.Section("failover outage window vs index (graceful, mid-run)");
  WorkloadSpec mixed;
  mixed.read_pct = 70;
  mixed.update_pct = 30;
  mixed.pick = KeyPick::kZipfian;
  std::vector<Op> mixed_ops = GenerateOps(mixed, ctx.ops, load, inserts, 47);
  const std::vector<std::string> failover_indexes =
      smoke ? std::vector<std::string>{"BTree", "ALEX"}
            : std::vector<std::string>{"BTree", "ART", "ALEX", "PGM", "LIPP"};
  for (const std::string& name : failover_indexes) {
    ServiceConfig cfg = BaseConfig(2, load, headroom);
    auto svc = MakeService(name, cfg, load);
    if (svc == nullptr) {
      ctx.sink.Add(ResultRow(name).Status("bulk_load_failed"));
      continue;
    }
    LoadGenOptions lg;
    lg.target_qps = smoke ? 20'000 : 100'000;
    lg.duration_seconds = duration;
    lg.clients = clients;
    FailoverReport report;
    std::thread failer([&svc, &report, duration] {
      std::this_thread::sleep_for(std::chrono::duration<double>(duration / 2));
      report = svc->FailOverShard(0, /*graceful=*/true);
    });
    LoadGenResult r = RunOpenLoop(svc.get(), mixed_ops, lg);
    failer.join();
    service::ServiceStats stats = svc->Stats();
    svc->Shutdown();
    ctx.sink.Add(
        ResultRow(name)
            .Status(report.ok ? "ok" : "failover_failed")
            .Metric("outage_ms", report.outage_ns / 1e6)
            .Metric("rebuild_ms", report.rebuild_ns / 1e6)
            .Metric("lost_records", static_cast<double>(report.lost_records))
            .Metric("failovers", static_cast<double>(stats.failovers))
            .Metric("achieved_qps", r.achieved_qps)
            .Metric("retried", static_cast<double>(r.retried))
            .Metric("p99_ns", static_cast<double>(r.point_latency.P99())));
  }
}

PIECES_REGISTER_EXPERIMENT(
    replication, "replication", "Service",
    "Primary->replica shipping: lag vs write rate, ack-mode cost, and the "
    "failover outage window per index family",
    "Replication lag tracks the offered write rate once it passes the "
    "link's drain rate, semi-sync acks trade throughput for zero-loss "
    "crash failover, and the promotion outage is dominated by the "
    "index-dependent rebuild",
    RunReplication)

}  // namespace
}  // namespace pieces::bench
