// Declarative experiment registry for the pieces_bench driver. Each paper
// table/figure registers one Experiment (name, figure tag, title, the
// paper claim it reproduces, and a Run body) at static-init time; the
// driver enumerates, filters and runs them against a shared Context that
// carries the ResultSink and the scale knobs (so the same experiments run
// at paper-shaped scale or at smoke scale in CI/tests).
#ifndef PIECES_BENCH_EXPERIMENT_H_
#define PIECES_BENCH_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/report.h"

namespace pieces::bench {

struct Context {
  ResultSink& sink;
  // Dataset-size baseline: the paper's 200M stand-in (default 200k,
  // multiplied by PIECES_SCALE; the smoke path shrinks it).
  size_t base_keys = 200'000;
  // Op-stream length baseline; experiments that historically used a
  // fraction/multiple of 200k ops scale off this.
  size_t ops = 200'000;
  // Executor defaults (overridable per experiment).
  size_t warmup_ops = 0;
  size_t repeats = 1;
  // Thread ceiling for the multi-threaded experiments.
  size_t max_threads = 4;
  // Time-based run mode (--duration): when > 0, measured passes replay
  // the op stream in a loop for this long instead of exactly `ops` times;
  // mutually exclusive with --ops at the CLI.
  double duration_seconds = 0;
  // Multi-get width (--batch): read-only phases route through
  // ViperStore::GetBatch in groups of this many keys. 1 = single-key Gets.
  size_t batch = 1;
  // Writable directory for disk-backend page files (--data-dir /
  // PIECES_DATA_DIR; the driver guarantees it exists and is writable, and
  // removes it on exit when it created the default temp dir itself).
  std::string data_dir = "/tmp";
};

struct Experiment {
  std::string name;    // CLI id, e.g. "fig10"
  std::string figure;  // paper tag, e.g. "Fig. 10"
  std::string title;   // human table title
  std::string claim;   // the paper claim the experiment reproduces
  std::function<void(Context&)> run;
};

// Registration happens from static initializers in each experiment
// translation unit via PIECES_REGISTER_EXPERIMENT.
struct ExperimentRegistrar {
  explicit ExperimentRegistrar(Experiment e);
};

// Registered experiments in registration (link) order.
const std::vector<Experiment>& AllExperiments();
// Returns nullptr when no experiment has that name.
const Experiment* FindExperiment(const std::string& name);
std::vector<std::string> ExperimentNames();

#define PIECES_REGISTER_EXPERIMENT(ident, name, figure, title, claim, fn) \
  static const ::pieces::bench::ExperimentRegistrar ident##_registrar{    \
      ::pieces::bench::Experiment{name, figure, title, claim, fn}};

}  // namespace pieces::bench

#endif  // PIECES_BENCH_EXPERIMENT_H_
