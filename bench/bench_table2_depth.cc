// Table II: the average depth of the learned indexes under YCSB and
// OSM(-like) key sets. Paper values (200M): RMI 2, FITing-tree 3, PGM 3,
// ALEX 1.03, XIndex 2 on YCSB; OSM pushes PGM to 6 and ALEX to 1.89.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "index/registry.h"
#include "workload/datasets.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Table II: average depth of learned indexes",
              "ALEX has the lowest depth (~1-2); OSM's complex CDF deepens "
              "every learned index, PGM the most");
  const size_t n = BaseKeys();
  const char* indexes[] = {"RMI", "FITing-tree-buf", "PGM", "ALEX",
                           "XIndex", "RS", "LIPP"};
  std::printf("%-18s %12s %12s\n", "index", "ycsb-depth", "osm-depth");
  for (const char* name : indexes) {
    double depth[2];
    int d = 0;
    for (const char* ds : {"ycsb", "osm"}) {
      auto index = MakeIndex(name);
      std::vector<Key> keys = MakeKeys(ds, n, 17);
      std::vector<KeyValue> data;
      data.reserve(n);
      for (Key k : keys) data.push_back({k, k});
      index->BulkLoad(data);
      depth[d++] = index->Stats().avg_depth;
    }
    std::printf("%-18s %12.2f %12.2f\n", name, depth[0], depth[1]);
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
