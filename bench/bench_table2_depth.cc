// Table II: the average depth of the learned indexes under YCSB and
// OSM(-like) key sets. Paper values (200M): RMI 2, FITing-tree 3, PGM 3,
// ALEX 1.03, XIndex 2 on YCSB; OSM pushes PGM to 6 and ALEX to 1.89.
#include <memory>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunTable2(Context& ctx) {
  const size_t n = ctx.base_keys;
  const char* indexes[] = {"RMI", "FITing-tree-buf", "PGM", "ALEX",
                           "XIndex", "RS", "LIPP"};
  for (const char* name : indexes) {
    ResultRow row(name);
    for (const char* ds : {"ycsb", "osm"}) {
      auto index = MakeIndex(name);
      std::vector<Key> keys = MakeKeys(ds, n, 17);
      std::vector<KeyValue> data;
      data.reserve(n);
      for (Key k : keys) data.push_back({k, k});
      index->BulkLoad(data);
      row.Metric(std::string(ds) + "_depth", index->Stats().avg_depth);
    }
    ctx.sink.Add(row);
  }
}

PIECES_REGISTER_EXPERIMENT(
    table2, "table2", "Table II",
    "Table II: average depth of learned indexes",
    "ALEX has the lowest depth (~1-2); OSM's complex CDF deepens every "
    "learned index, PGM the most",
    RunTable2)

}  // namespace
}  // namespace pieces::bench
