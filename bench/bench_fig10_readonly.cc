// Fig. 10: end-to-end read-only throughput and p99.9 tail latency in the
// Viper store, YCSB and OSM key sets, dataset growing 1x -> 4x (the
// paper's 200M -> 800M). Paper findings: ALEX wins among sorted indexes
// (4-30% over other learned ones); learned indexes beat the traditional
// tree indexes; ALEX/RMI tails grow with data size (no max-error bound);
// RS degrades as data outgrows its fixed radix prefix; everything learned
// slows on OSM.
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunFig10(Context& ctx) {
  for (const char* ds : {"ycsb", "osm"}) {
    for (size_t mult : {1, 4}) {
      size_t n = ctx.base_keys * mult;
      std::vector<Key> keys = MakeKeys(ds, n, 17);
      auto ops = GenerateOps(WorkloadSpec::ReadOnly(), ctx.ops, keys, {});
      ctx.sink.Section(std::string("dataset ") + ds + ", " +
                       std::to_string(n) + " keys");
      for (const std::string& name : AllIndexNames()) {
        auto store = MakeStore(ctx, name, keys);
        if (store == nullptr) continue;
        RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx));
        ctx.sink.Add(ThroughputRow(name, r)
                         .Label("dataset", ds)
                         .Label("keys", std::to_string(n)));
      }
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig10, "fig10", "Fig. 10", "Fig. 10: read-only end-to-end (Viper)",
    "ALEX best overall; learned > traditional trees; tails of "
    "unbounded-error indexes grow with dataset size",
    RunFig10)

}  // namespace
}  // namespace pieces::bench
