// Fig. 10: end-to-end read-only throughput and p99.9 tail latency in the
// Viper store, YCSB and OSM key sets, dataset growing 1x -> 4x (the
// paper's 200M -> 800M). Paper findings: ALEX wins among sorted indexes
// (4-30% over other learned ones); learned indexes beat the traditional
// tree indexes; ALEX/RMI tails grow with data size (no max-error bound);
// RS degrades as data outgrows its fixed radix prefix; everything learned
// slows on OSM.
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 10: read-only end-to-end (Viper)",
              "ALEX best overall; learned > traditional trees; tails of "
              "unbounded-error indexes grow with dataset size");
  const size_t ops_n = 200'000;
  for (const char* ds : {"ycsb", "osm"}) {
    for (size_t mult : {1, 4}) {
      size_t n = BaseKeys() * mult;
      std::vector<Key> keys = MakeKeys(ds, n, 17);
      auto ops = GenerateOps(WorkloadSpec::ReadOnly(), ops_n, keys, {});
      std::printf("\n-- dataset %s, %zu keys --\n", ds, n);
      for (const std::string& name : AllIndexNames()) {
        auto store = MakeStore(name, keys);
        if (store == nullptr) continue;
        RunResult r = RunStoreOps(store.get(), ops);
        PrintRow(name, r.mops, r.latency.P50(), r.latency.P999());
      }
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
