// Dataset characterization: the quantitative backing for the paper's
// dataset narratives — OSM's complex CDF (more PLA segments, deeper
// indexes), FACE's prefix skew (radix collapse), lognormal's heavy tail.
// Prints the CdfStats metrics for every dataset the benches use.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/cdf_stats.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Dataset hardness (CDF characterization)",
              "OSM needs far more PLA segments (complex CDF); FACE "
              "concentrates nearly all keys under one 14-bit prefix");
  const size_t n = BaseKeys();
  std::printf("%-12s %14s %14s %14s %12s\n", "dataset", "segs/1M(eps64)",
              "global-fit-err", "top-prefix14", "density-cv");
  for (const char* ds :
       {"ycsb", "normal", "lognormal", "osm", "face", "sequential"}) {
    std::vector<Key> keys = MakeKeys(ds, n, 17);
    CdfStats s = AnalyzeCdf(keys.data(), keys.size());
    std::printf("%-12s %14.1f %14.5f %14.4f %12.2f\n", ds,
                s.pla_segments_per_million, s.global_fit_error_frac,
                s.top_prefix14_frac, s.density_cv);
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
