// Dataset characterization: the quantitative backing for the paper's
// dataset narratives — OSM's complex CDF (more PLA segments, deeper
// indexes), FACE's prefix skew (radix collapse), lognormal's heavy tail.
// Emits the CdfStats metrics for every dataset the benches use.
#include "bench/bench_util.h"
#include "workload/cdf_stats.h"

namespace pieces::bench {
namespace {

void RunDatasetHardness(Context& ctx) {
  const size_t n = ctx.base_keys;
  for (const char* ds :
       {"ycsb", "normal", "lognormal", "osm", "face", "sequential"}) {
    std::vector<Key> keys = MakeKeys(ds, n, 17);
    CdfStats s = AnalyzeCdf(keys.data(), keys.size());
    ctx.sink.Add(ResultRow(ds)
                     .Metric("segs_per_million_eps64",
                             s.pla_segments_per_million)
                     .Metric("global_fit_err", s.global_fit_error_frac)
                     .Metric("top_prefix14", s.top_prefix14_frac)
                     .Metric("density_cv", s.density_cv));
  }
}

PIECES_REGISTER_EXPERIMENT(
    dataset_hardness, "dataset_hardness", "dataset char.",
    "Dataset hardness (CDF characterization)",
    "OSM needs far more PLA segments (complex CDF); FACE concentrates "
    "nearly all keys under one 14-bit prefix",
    RunDatasetHardness)

}  // namespace
}  // namespace pieces::bench
