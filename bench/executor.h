// Op-stream executor for the end-to-end (ViperStore) experiments.
// Fixes the two measurement defects of the old inline RunStoreOps:
//  * worker threads are spawned *before* the wall clock starts and
//    released together through a start barrier, so multi-thread Mops/s no
//    longer charges thread creation/join to the measured ops;
//  * latencies are recorded per op type, so scan latencies no longer
//    pollute the point-op (read/write) p99.9 tails.
// Optional warmup ops run untimed before measurement, and the measured
// pass can be repeated with the throughput averaged across repeats.
#ifndef PIECES_BENCH_EXECUTOR_H_
#define PIECES_BENCH_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "common/latency_recorder.h"
#include "store/store_backend.h"
#include "workload/ycsb.h"

namespace pieces::bench {

struct ExecutorOptions {
  size_t threads = 1;
  // Ops replayed untimed before the measured pass (capped at ops.size()).
  size_t warmup_ops = 0;
  // Measured passes over the op stream; mops averages across passes and
  // latency histograms merge all passes.
  size_t repeats = 1;
  // Time-based mode (the bench driver's --duration flag): when > 0, each
  // measured pass replays the op stream in a loop, wrapping around, until
  // the deadline — instead of stopping after one traversal. Warmup stays
  // op-count based.
  double duration_seconds = 0;
  // Multi-get width (the driver's --batch flag): when > 1, each worker
  // gathers up to this many consecutive kRead ops from its partition and
  // issues them as one ViperStore::GetBatch; per-op latency is the batch
  // time divided by its size. Other op types always execute singly.
  size_t batch = 1;
};

struct RunStats {
  double mops = 0;           // total measured ops / total measured wall time
  double wall_seconds = 0;   // summed across repeats
  size_t ops_executed = 0;   // summed across repeats

  // Per-worker throughput (ops the worker executed / that worker's own
  // wall time, summed across repeats) — min/max/stddev expose stragglers
  // that the aggregate mops averages away.
  std::vector<double> per_worker_mops;
  double WorkerMopsMin() const;
  double WorkerMopsMax() const;
  double WorkerMopsStddev() const;

  // Latency histograms by op type (indexed by OpType), plus the merged
  // point-op view (read/update/insert/RMW — excludes scans).
  std::vector<LatencyRecorder> per_type =
      std::vector<LatencyRecorder>(5);
  LatencyRecorder point;

  const LatencyRecorder& scans() const {
    return per_type[static_cast<size_t>(OpType::kScan)];
  }
};

// Executes `ops` against the store (any StoreBackend — ViperStore or
// DiskStore) across `opts.threads` threads (ops are partitioned
// round-robin). Values use the store's synthetic generator.
RunStats RunStoreOps(StoreBackend* store, const std::vector<Op>& ops,
                     const ExecutorOptions& opts = {});

}  // namespace pieces::bench

#endif  // PIECES_BENCH_EXECUTOR_H_
