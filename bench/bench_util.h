// Shared bench harness: dataset prep, op-stream execution against a
// ViperStore (the paper's end-to-end environment) or a bare index, and
// table printing. Every bench binary prints the paper's rows plus the
// qualitative claim it reproduces; PIECES_SCALE scales dataset sizes
// toward the paper's 200M-800M keys (default sizes are 1000x smaller).
#ifndef PIECES_BENCH_BENCH_UTIL_H_
#define PIECES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/latency_recorder.h"
#include "common/timer.h"
#include "index/registry.h"
#include "store/viper.h"
#include "workload/datasets.h"
#include "workload/ycsb.h"

namespace pieces::bench {

// The paper's 200M baseline, scaled 1000x down by default.
inline size_t BaseKeys() { return 200'000 * BenchScale(); }

struct RunResult {
  double mops = 0;          // Throughput in million ops/s.
  LatencyRecorder latency;  // Per-op latency.
};

// Executes `ops` against the store across `threads` threads (ops are
// partitioned round-robin). Values use the store's synthetic generator.
inline RunResult RunStoreOps(ViperStore* store, const std::vector<Op>& ops,
                             size_t threads = 1) {
  RunResult result;
  std::vector<LatencyRecorder> recorders(threads);
  Timer wall;
  auto worker = [&](size_t t) {
    std::vector<uint8_t> buf(256);
    std::vector<Key> scan_out;
    LatencyRecorder& rec = recorders[t];
    for (size_t i = t; i < ops.size(); i += threads) {
      const Op& op = ops[i];
      Timer timer;
      switch (op.type) {
        case OpType::kRead:
          store->Get(op.key, buf.data());
          break;
        case OpType::kUpdate:
        case OpType::kInsert:
          store->PutSynthetic(op.key);
          break;
        case OpType::kReadModifyWrite:
          store->Get(op.key, buf.data());
          store->PutSynthetic(op.key);
          break;
        case OpType::kScan:
          scan_out.clear();
          store->Scan(op.key, op.scan_len, &scan_out);
          break;
      }
      rec.Record(timer.ElapsedNanos());
    }
  };
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
  double secs = wall.ElapsedSeconds();
  result.mops = secs > 0 ? static_cast<double>(ops.size()) / secs / 1e6 : 0;
  for (const auto& rec : recorders) result.latency.Merge(rec);
  return result;
}

// Builds a ViperStore around the named index, bulk-loaded with `keys`.
inline std::unique_ptr<ViperStore> MakeStore(const std::string& index_name,
                                             const std::vector<Key>& keys) {
  ViperStore::Config cfg;
  cfg.value_size = 200;
  // Records are 208B; leave 2x headroom for out-of-place updates.
  cfg.pmem_capacity = keys.size() * 208 * 4 + (64 << 20);
  cfg.read_latency_ns = NvmReadLatencyNs();
  cfg.write_latency_ns = NvmWriteLatencyNs();
  auto store = std::make_unique<ViperStore>(MakeIndex(index_name), cfg);
  if (!store->BulkLoad(keys)) {
    std::fprintf(stderr, "bulk load failed for %s\n", index_name.c_str());
    return nullptr;
  }
  return store;
}

inline void PrintHeader(const char* title, const char* claim) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper claim: %s\n", claim);
}

inline void PrintRow(const std::string& name, double mops, uint64_t p50,
                     uint64_t p999) {
  std::printf("%-18s %10.3f Mops/s   p50 %8llu ns   p99.9 %10llu ns\n",
              name.c_str(), mops, static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p999));
}

}  // namespace pieces::bench

#endif  // PIECES_BENCH_BENCH_UTIL_H_
