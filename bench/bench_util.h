// Shared helpers for the registered experiments: ViperStore construction
// around a named index (with explicit failure rows — a bulk-load failure
// becomes a status="bulk_load_failed" result instead of silently
// vanishing from the sweep) and the standard throughput row shape.
// Dataset/op scaling lives in Context (see experiment.h); execution lives
// in executor.h.
#ifndef PIECES_BENCH_BENCH_UTIL_H_
#define PIECES_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/executor.h"
#include "bench/experiment.h"
#include "common/config.h"
#include "index/registry.h"
#include "store/viper.h"
#include "workload/datasets.h"
#include "workload/ycsb.h"

namespace pieces::bench {

// Builds a ViperStore around the named index, bulk-loaded with `keys`.
// On bulk-load failure, records an explicit failure row in the sink and
// returns nullptr.
inline std::unique_ptr<ViperStore> MakeStore(Context& ctx,
                                             const std::string& index_name,
                                             const std::vector<Key>& keys) {
  ViperStore::Config cfg;
  cfg.value_size = 200;
  // Records are 224B (8B key + 200B value + 16B commit header); leave
  // generous headroom for out-of-place updates.
  cfg.pmem_capacity = keys.size() * 224 * 4 + (64 << 20);
  cfg.read_latency_ns = NvmReadLatencyNs();
  cfg.write_latency_ns = NvmWriteLatencyNs();
  auto store = std::make_unique<ViperStore>(MakeIndex(index_name), cfg);
  if (!store->BulkLoad(keys)) {
    ctx.sink.Add(ResultRow(index_name)
                     .Status("bulk_load_failed")
                     .Label("error", "bulk load failed"));
    return nullptr;
  }
  return store;
}

// The standard end-to-end row: throughput plus point-op tail percentiles
// (scan latencies are tracked separately by the executor and do not
// pollute these), plus per-worker throughput spread so thread stragglers
// are visible in the structured output.
inline ResultRow ThroughputRow(const std::string& name,
                               const RunStats& stats) {
  return ResultRow(name)
      .Metric("mops", stats.mops)
      .Metric("p50_ns", static_cast<double>(stats.point.P50()))
      .Metric("p999_ns", static_cast<double>(stats.point.P999()))
      .Metric("worker_mops_min", stats.WorkerMopsMin())
      .Metric("worker_mops_max", stats.WorkerMopsMax())
      .Metric("worker_mops_stddev", stats.WorkerMopsStddev());
}

// Executor options seeded from the context's warmup/repeat/duration
// defaults.
inline ExecutorOptions ExecOptions(const Context& ctx, size_t threads = 1) {
  ExecutorOptions opts;
  opts.threads = threads;
  opts.warmup_ops = ctx.warmup_ops;
  opts.repeats = ctx.repeats;
  opts.duration_seconds = ctx.duration_seconds;
  opts.batch = ctx.batch;
  return opts;
}

}  // namespace pieces::bench

#endif  // PIECES_BENCH_BENCH_UTIL_H_
