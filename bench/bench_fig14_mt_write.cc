// Fig. 14: multi-threaded write-only. Among the learned indexes only
// XIndex supports concurrent writes; the paper compares it against the
// concurrent traditional indexes and finds it lands in the same band
// (close to Masstree). Here the traditional side is OLC-BTree (the
// Masstree/Bw-tree class), SkipList and the hash index.
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunFig14(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 17);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);
  auto ops = GenerateOps(WorkloadSpec::WriteOnly(), ctx.ops, load, inserts);
  for (size_t threads = 1; threads <= ctx.max_threads; threads *= 2) {
    ctx.sink.Section(std::to_string(threads) + " thread(s)");
    for (const char* name : {"XIndex", "OLC-BTree", "SkipList", "Hash"}) {
      auto store = MakeStore(ctx, name, load);
      if (store == nullptr) continue;
      RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx, threads));
      ctx.sink.Add(ThroughputRow(name, r)
                       .Label("threads", std::to_string(threads)));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig14, "fig14", "Fig. 14", "Fig. 14: multi-threaded write-only",
    "XIndex (the only concurrent-write learned index) lands in the same "
    "band as the concurrent traditional indexes",
    RunFig14)

}  // namespace
}  // namespace pieces::bench
