// Fig. 14: multi-threaded write-only. Among the learned indexes only
// XIndex supports concurrent writes; the paper compares it against the
// concurrent traditional indexes and finds it lands in the same band
// (close to Masstree). Here the traditional side is OLC-BTree (the
// Masstree/Bw-tree class), SkipList and the hash index.
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 14: multi-threaded write-only",
              "XIndex (the only concurrent-write learned index) lands in "
              "the same band as the concurrent traditional indexes");
  const size_t n = BaseKeys();
  const size_t ops_n = 200'000;
  std::vector<Key> all = MakeKeys("ycsb", n + n / 3, 17);
  std::vector<Key> load;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &load, &inserts);
  auto ops = GenerateOps(WorkloadSpec::WriteOnly(), ops_n, load, inserts);
  size_t max_threads = BenchMaxThreads();
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    std::printf("\n-- %zu thread(s) --\n", threads);
    for (const char* name : {"XIndex", "OLC-BTree", "SkipList", "Hash"}) {
      auto store = MakeStore(name, load);
      if (store == nullptr) continue;
      RunResult r = RunStoreOps(store.get(), ops, threads);
      PrintRow(name, r.mops, r.latency.P50(), r.latency.P999());
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
