#include "bench/experiment.h"

namespace pieces::bench {
namespace {

std::vector<Experiment>& Registry() {
  static std::vector<Experiment> experiments;
  return experiments;
}

}  // namespace

ExperimentRegistrar::ExperimentRegistrar(Experiment e) {
  Registry().push_back(std::move(e));
}

const std::vector<Experiment>& AllExperiments() { return Registry(); }

const Experiment* FindExperiment(const std::string& name) {
  for (const Experiment& e : Registry()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> ExperimentNames() {
  std::vector<std::string> names;
  for (const Experiment& e : Registry()) names.push_back(e.name);
  return names;
}

}  // namespace pieces::bench
