// Hyperparameter tuning sweeps (paper §III-A1: "We first separately
// evaluate the performance of each index with different hyperparameters
// and choose their configurations with the best performance"). One sweep
// per tunable learned index: lookup throughput against the knob, bare
// index (no KV store) so the knob's effect is undamped.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "learned/alex.h"
#include "learned/fiting_tree.h"
#include "learned/lipp.h"
#include "learned/pgm.h"
#include "learned/radix_spline.h"
#include "learned/rmi.h"
#include "learned/xindex.h"

namespace pieces::bench {
namespace {

constexpr size_t kLookups = 300'000;

double MeasureLookupMops(OrderedIndex* index, const std::vector<Key>& keys) {
  Rng rng(5);
  std::vector<Key> probes(kLookups);
  for (Key& p : probes) p = keys[rng.NextUnder(keys.size())];
  Timer timer;
  Value v = 0;
  uint64_t found = 0;
  for (Key p : probes) found += index->Get(p, &v);
  double mops = static_cast<double>(kLookups) / timer.ElapsedSeconds() / 1e6;
  if (found != probes.size()) std::printf("  (misses!)\n");
  return mops;
}

void Run() {
  PrintHeader("Hyperparameter tuning sweeps (paper §III-A1)",
              "each learned index has a throughput-optimal knob setting; "
              "the benches elsewhere use the winners");
  const size_t n = BaseKeys();
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  std::vector<KeyValue> data;
  for (Key k : keys) data.push_back({k, k});

  std::printf("\nRMI: second-stage model count\n");
  for (size_t models : {64, 256, 1024, 4096, 16384}) {
    Rmi rmi(models);
    rmi.BulkLoad(data);
    std::printf("  models=%-7zu %8.3f Mops/s  (max err %zu)\n", models,
                MeasureLookupMops(&rmi, keys), rmi.Stats().max_error);
  }

  std::printf("\nRS: radix bits x spline error\n");
  for (size_t bits : {10, 14, 18}) {
    for (size_t err : {8, 32, 128}) {
      RadixSpline rs(bits, err);
      rs.BulkLoad(data);
      std::printf("  r=%-3zu eps=%-4zu %8.3f Mops/s  (%zu spline pts)\n",
                  bits, err, MeasureLookupMops(&rs, keys),
                  rs.Stats().leaf_count + 1);
    }
  }

  std::printf("\nPGM: leaf epsilon\n");
  for (size_t eps : {16, 64, 256, 1024}) {
    DynamicPgm pgm(eps);
    pgm.BulkLoad(data);
    std::printf("  eps=%-5zu %8.3f Mops/s  (%zu leaves)\n", eps,
                MeasureLookupMops(&pgm, keys), pgm.Stats().leaf_count);
  }

  std::printf("\nFITing-tree: leaf epsilon (buffered)\n");
  for (size_t eps : {16, 64, 256, 1024}) {
    FitingTree fit(FitingTree::InsertMode::kBuffer, eps, 256);
    fit.BulkLoad(data);
    std::printf("  eps=%-5zu %8.3f Mops/s  (%zu leaves)\n", eps,
                MeasureLookupMops(&fit, keys), fit.Stats().leaf_count);
  }

  std::printf("\nALEX: max data node keys\n");
  for (size_t node_keys : {2048, 8192, 32768}) {
    Alex::Config cfg;
    cfg.max_data_node_keys = node_keys;
    cfg.target_leaf_keys = node_keys / 4;
    Alex alex(cfg);
    alex.BulkLoad(data);
    std::printf("  node=%-6zu %8.3f Mops/s  (depth %.2f)\n", node_keys,
                MeasureLookupMops(&alex, keys), alex.Stats().avg_depth);
  }

  std::printf("\nXIndex: group size\n");
  for (size_t group : {1024, 4096, 16384}) {
    XIndex xi(group, 256);
    xi.BulkLoad(data);
    std::printf("  group=%-6zu %8.3f Mops/s  (%zu groups)\n", group,
                MeasureLookupMops(&xi, keys), xi.Stats().leaf_count);
  }

  std::printf("\nLIPP: gap factor\n");
  for (double gap : {1.25, 2.0, 4.0}) {
    LippIndex lipp(gap);
    lipp.BulkLoad(data);
    std::printf("  gap=%-5.2f %8.3f Mops/s  (depth %.2f, %.1f MB)\n", gap,
                MeasureLookupMops(&lipp, keys), lipp.Stats().avg_depth,
                static_cast<double>(lipp.TotalSizeBytes()) / 1e6);
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
