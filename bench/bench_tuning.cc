// Hyperparameter tuning sweeps (paper §III-A1: "We first separately
// evaluate the performance of each index with different hyperparameters
// and choose their configurations with the best performance"). One sweep
// per tunable learned index: lookup throughput against the knob, bare
// index (no KV store) so the knob's effect is undamped.
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "learned/alex.h"
#include "learned/fiting_tree.h"
#include "learned/lipp.h"
#include "learned/pgm.h"
#include "learned/radix_spline.h"
#include "learned/rmi.h"
#include "learned/xindex.h"

namespace pieces::bench {
namespace {

double MeasureLookupMops(Context& ctx, OrderedIndex* index,
                         const std::vector<Key>& keys) {
  const size_t lookups = std::max<size_t>(1000, ctx.ops);
  Rng rng(5);
  std::vector<Key> probes(lookups);
  for (Key& p : probes) p = keys[rng.NextUnder(keys.size())];
  Timer timer;
  Value v = 0;
  uint64_t found = 0;
  for (Key p : probes) found += index->Get(p, &v);
  double mops =
      static_cast<double>(lookups) / timer.ElapsedSeconds() / 1e6;
  if (found != probes.size()) ctx.sink.Note("  (misses!)");
  return mops;
}

void RunTuning(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  std::vector<KeyValue> data;
  for (Key k : keys) data.push_back({k, k});

  ctx.sink.Section("RMI: second-stage model count");
  for (size_t models : {64, 256, 1024, 4096, 16384}) {
    Rmi rmi(models);
    rmi.BulkLoad(data);
    ctx.sink.Add(ResultRow("RMI")
                     .Label("models", std::to_string(models))
                     .Metric("mops", MeasureLookupMops(ctx, &rmi, keys))
                     .Metric("max_error",
                             static_cast<double>(rmi.Stats().max_error)));
  }

  ctx.sink.Section("RS: radix bits x spline error");
  for (size_t bits : {10, 14, 18}) {
    for (size_t err : {8, 32, 128}) {
      RadixSpline rs(bits, err);
      rs.BulkLoad(data);
      ctx.sink.Add(
          ResultRow("RS")
              .Label("radix_bits", std::to_string(bits))
              .Label("eps", std::to_string(err))
              .Metric("mops", MeasureLookupMops(ctx, &rs, keys))
              .Metric("spline_points",
                      static_cast<double>(rs.Stats().leaf_count + 1)));
    }
  }

  ctx.sink.Section("PGM: leaf epsilon");
  for (size_t eps : {16, 64, 256, 1024}) {
    DynamicPgm pgm(eps);
    pgm.BulkLoad(data);
    ctx.sink.Add(ResultRow("PGM")
                     .Label("eps", std::to_string(eps))
                     .Metric("mops", MeasureLookupMops(ctx, &pgm, keys))
                     .Metric("leaves",
                             static_cast<double>(pgm.Stats().leaf_count)));
  }

  ctx.sink.Section("FITing-tree: leaf epsilon (buffered)");
  for (size_t eps : {16, 64, 256, 1024}) {
    FitingTree fit(FitingTree::InsertMode::kBuffer, eps, 256);
    fit.BulkLoad(data);
    ctx.sink.Add(ResultRow("FITing-tree-buf")
                     .Label("eps", std::to_string(eps))
                     .Metric("mops", MeasureLookupMops(ctx, &fit, keys))
                     .Metric("leaves",
                             static_cast<double>(fit.Stats().leaf_count)));
  }

  ctx.sink.Section("ALEX: max data node keys");
  for (size_t node_keys : {2048, 8192, 32768}) {
    Alex::Config cfg;
    cfg.max_data_node_keys = node_keys;
    cfg.target_leaf_keys = node_keys / 4;
    Alex alex(cfg);
    alex.BulkLoad(data);
    ctx.sink.Add(ResultRow("ALEX")
                     .Label("node_keys", std::to_string(node_keys))
                     .Metric("mops", MeasureLookupMops(ctx, &alex, keys))
                     .Metric("avg_depth", alex.Stats().avg_depth));
  }

  ctx.sink.Section("XIndex: group size");
  for (size_t group : {1024, 4096, 16384}) {
    XIndex xi(group, 256);
    xi.BulkLoad(data);
    ctx.sink.Add(ResultRow("XIndex")
                     .Label("group", std::to_string(group))
                     .Metric("mops", MeasureLookupMops(ctx, &xi, keys))
                     .Metric("groups",
                             static_cast<double>(xi.Stats().leaf_count)));
  }

  ctx.sink.Section("LIPP: gap factor");
  for (double gap : {1.25, 2.0, 4.0}) {
    LippIndex lipp(gap);
    lipp.BulkLoad(data);
    char gap_label[16];
    std::snprintf(gap_label, sizeof(gap_label), "%.2f", gap);
    ctx.sink.Add(
        ResultRow("LIPP")
            .Label("gap", gap_label)
            .Metric("mops", MeasureLookupMops(ctx, &lipp, keys))
            .Metric("avg_depth", lipp.Stats().avg_depth)
            .Metric("index_mb",
                    static_cast<double>(lipp.TotalSizeBytes()) / 1e6));
  }
}

PIECES_REGISTER_EXPERIMENT(
    tuning, "tuning", "§III-A1",
    "Hyperparameter tuning sweeps (paper §III-A1)",
    "each learned index has a throughput-optimal knob setting; the "
    "benches elsewhere use the winners",
    RunTuning)

}  // namespace
}  // namespace pieces::bench
