// Fig. 12: multi-threaded read-only throughput and tail latency (all
// indexes support concurrent reads). Paper finding: the hash index (CCEH)
// scales best; learned indexes scale with threads until the memory
// bandwidth saturates. (On this simulated substrate the shape of interest
// is the relative scaling, not the absolute saturation point.)
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void RunFig12(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  auto ops = GenerateOps(WorkloadSpec::ReadOnly(), ctx.ops, keys, {});
  for (size_t threads = 1; threads <= ctx.max_threads; threads *= 2) {
    ctx.sink.Section(std::to_string(threads) + " thread(s)");
    for (const char* name : {"ALEX", "PGM", "XIndex", "RS",
                             "FITing-tree-buf", "BTree", "OLC-BTree",
                             "SkipList", "ART", "Wormhole", "Hash"}) {
      auto store = MakeStore(ctx, name, keys);
      if (store == nullptr) continue;
      RunStats r = RunStoreOps(store.get(), ops, ExecOptions(ctx, threads));
      ctx.sink.Add(ThroughputRow(name, r)
                       .Label("threads", std::to_string(threads)));
    }
  }
}

PIECES_REGISTER_EXPERIMENT(
    fig12, "fig12", "Fig. 12", "Fig. 12: multi-threaded read-only",
    "hash scales best; all indexes gain with threads until bandwidth "
    "saturates",
    RunFig12)

}  // namespace
}  // namespace pieces::bench
