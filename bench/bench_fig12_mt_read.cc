// Fig. 12: multi-threaded read-only throughput and tail latency (all
// indexes support concurrent reads). Paper finding: the hash index (CCEH)
// scales best; learned indexes scale with threads until the memory
// bandwidth saturates. (On this simulated substrate the shape of interest
// is the relative scaling, not the absolute saturation point.)
#include <cstdio>

#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void Run() {
  PrintHeader("Fig. 12: multi-threaded read-only",
              "hash scales best; all indexes gain with threads until "
              "bandwidth saturates");
  const size_t n = BaseKeys();
  const size_t ops_n = 200'000;
  std::vector<Key> keys = MakeKeys("ycsb", n, 17);
  auto ops = GenerateOps(WorkloadSpec::ReadOnly(), ops_n, keys, {});
  size_t max_threads = BenchMaxThreads();
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    std::printf("\n-- %zu thread(s) --\n", threads);
    for (const char* name : {"ALEX", "PGM", "XIndex", "RS",
                             "FITing-tree-buf", "BTree", "OLC-BTree",
                             "SkipList", "ART", "Wormhole", "Hash"}) {
      auto store = MakeStore(name, keys);
      if (store == nullptr) continue;
      RunResult r = RunStoreOps(store.get(), ops, threads);
      PrintRow(name, r.mops, r.latency.P50(), r.latency.P999());
    }
  }
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
