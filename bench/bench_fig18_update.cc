// Fig. 18(a)-(d): insertion and retraining strategies in isolation.
// (a) insertion time per strategy as reserved space grows 128 -> 1024;
// (b) retraining behaviour of the real indexes over an insert stream;
// (c) buffer reserve vs retrain count / avg / total retrain time;
// (d) total update time (insert + retrain) per index.
// Paper findings: Inplace is worst (mass movement) and degrades with
// larger reserves; Buffer degrades with larger reserves too; ALEX-gap is
// flat and fastest; ALEX retrains rarely but each retrain is long, PGM
// retrains constantly but cheaply; totals rank ALEX < PGM < FIT-buf <
// FIT-inp.
#include <memory>

#include "anatomy/update_policies.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace pieces::bench {
namespace {

void PartA(Context& ctx, const std::vector<Key>& base,
           const std::vector<Key>& inserts) {
  ctx.sink.Section("(a) insert time per strategy vs reserved space");
  for (const std::string& kind : UpdatePolicyKinds()) {
    for (size_t reserve : {128, 256, 512, 1024}) {
      auto policy = MakeUpdatePolicy(kind, reserve);
      policy->Load(base, 4096);
      for (Key k : inserts) policy->Insert(k);
      UpdatePolicyStats s = policy->Stats();
      ctx.sink.Add(
          ResultRow(kind)
              .Label("reserve", std::to_string(reserve))
              .Metric("insert_ns_per_op",
                      static_cast<double>(s.insert_nanos) / inserts.size())
              .Metric("moved_per_insert",
                      static_cast<double>(s.moved_keys) / inserts.size())
              .Metric("retrains", static_cast<double>(s.retrain_count)));
      if (kind == "ALEX-gap") break;  // Gap sizing ignores the reserve.
    }
  }
}

void PartBD(Context& ctx, const std::vector<Key>& base,
            const std::vector<Key>& inserts) {
  ctx.sink.Section("(b)+(d) real-index retraining profile over " +
                   std::to_string(inserts.size()) + " inserts");
  for (const char* name :
       {"FITing-tree-inp", "FITing-tree-buf", "PGM", "ALEX"}) {
    auto index = MakeIndex(name);
    std::vector<KeyValue> data;
    for (Key k : base) data.push_back({k, k});
    index->BulkLoad(data);
    Timer timer;
    for (Key k : inserts) index->Insert(k, k);
    uint64_t total_ns = timer.ElapsedNanos();
    IndexStats s = index->Stats();
    double avg_us = s.retrain_count == 0
                        ? 0
                        : static_cast<double>(s.retrain_nanos) /
                              static_cast<double>(s.retrain_count) / 1e3;
    ctx.sink.Add(
        ResultRow(name)
            .Metric("retrains", static_cast<double>(s.retrain_count))
            .Metric("avg_retrain_us", avg_us)
            .Metric("total_retrain_ms",
                    static_cast<double>(s.retrain_nanos) / 1e6)
            .Metric("total_insert_ms",
                    static_cast<double>(total_ns) / 1e6));
  }
}

void PartC(Context& ctx, const std::vector<Key>& base,
           const std::vector<Key>& inserts) {
  ctx.sink.Section("(c) Buffer strategy: reserve vs retrain count and time");
  for (size_t reserve : {128, 256, 512, 1024, 2048}) {
    auto policy = MakeUpdatePolicy("Buffer", reserve);
    policy->Load(base, 4096);
    for (Key k : inserts) policy->Insert(k);
    UpdatePolicyStats s = policy->Stats();
    double avg_us = s.retrain_count == 0
                        ? 0
                        : static_cast<double>(s.retrain_nanos) /
                              static_cast<double>(s.retrain_count) / 1e3;
    ctx.sink.Add(
        ResultRow("Buffer")
            .Label("reserve", std::to_string(reserve))
            .Metric("retrains", static_cast<double>(s.retrain_count))
            .Metric("avg_retrain_us", avg_us)
            .Metric("total_retrain_ms",
                    static_cast<double>(s.retrain_nanos) / 1e6));
  }
}

void RunFig18(Context& ctx) {
  const size_t n = ctx.base_keys;
  std::vector<Key> all = MakeUniformKeys(n + n / 3, 17);
  std::vector<Key> base;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &base, &inserts);
  PartA(ctx, base, inserts);
  PartBD(ctx, base, inserts);
  PartC(ctx, base, inserts);
}

PIECES_REGISTER_EXPERIMENT(
    fig18, "fig18", "Fig. 18",
    "Fig. 18: insertion & retraining strategies",
    "Inplace worst and larger reserve hurts it; ALEX-gap flat and "
    "fastest; ALEX retrains rarely/long, PGM often/cheap; total update "
    "time ALEX < PGM < FIT-buf < FIT-inp",
    RunFig18)

}  // namespace
}  // namespace pieces::bench
