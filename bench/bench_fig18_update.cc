// Fig. 18(a)-(d): insertion and retraining strategies in isolation.
// (a) insertion time per strategy as reserved space grows 128 -> 1024;
// (b) retraining behaviour of the real indexes over an insert stream;
// (c) buffer reserve vs retrain count / avg / total retrain time;
// (d) total update time (insert + retrain) per index.
// Paper findings: Inplace is worst (mass movement) and degrades with
// larger reserves; Buffer degrades with larger reserves too; ALEX-gap is
// flat and fastest; ALEX retrains rarely but each retrain is long, PGM
// retrains constantly but cheaply; totals rank ALEX < PGM < FIT-buf <
// FIT-inp.
#include <cstdio>
#include <memory>

#include "anatomy/update_policies.h"
#include "bench/bench_util.h"

namespace pieces::bench {
namespace {

void PartA(const std::vector<Key>& base, const std::vector<Key>& inserts) {
  std::printf("\n(a) insert time per strategy vs reserved space\n");
  std::printf("%-10s %10s %14s %14s %12s\n", "strategy", "reserve",
              "insert-ns/op", "moved/insert", "retrains");
  for (const std::string& kind : UpdatePolicyKinds()) {
    for (size_t reserve : {128, 256, 512, 1024}) {
      auto policy = MakeUpdatePolicy(kind, reserve);
      policy->Load(base, 4096);
      for (Key k : inserts) policy->Insert(k);
      UpdatePolicyStats s = policy->Stats();
      std::printf("%-10s %10zu %14.1f %14.2f %12llu\n", kind.c_str(),
                  reserve,
                  static_cast<double>(s.insert_nanos) / inserts.size(),
                  static_cast<double>(s.moved_keys) / inserts.size(),
                  static_cast<unsigned long long>(s.retrain_count));
      if (kind == "ALEX-gap") break;  // Gap sizing ignores the reserve.
    }
  }
}

void PartBD(const std::vector<Key>& base, const std::vector<Key>& inserts) {
  std::printf("\n(b)+(d) real-index retraining profile over %zu inserts\n",
              inserts.size());
  std::printf("%-18s %10s %14s %14s %14s\n", "index", "retrains",
              "avg-retrain-us", "total-retrain-ms", "total-insert-ms");
  for (const char* name :
       {"FITing-tree-inp", "FITing-tree-buf", "PGM", "ALEX"}) {
    auto index = MakeIndex(name);
    std::vector<KeyValue> data;
    for (Key k : base) data.push_back({k, k});
    index->BulkLoad(data);
    Timer timer;
    for (Key k : inserts) index->Insert(k, k);
    uint64_t total_ns = timer.ElapsedNanos();
    IndexStats s = index->Stats();
    double avg_us = s.retrain_count == 0
                        ? 0
                        : static_cast<double>(s.retrain_nanos) /
                              static_cast<double>(s.retrain_count) / 1e3;
    std::printf("%-18s %10zu %14.2f %14.2f %14.2f\n", name, s.retrain_count,
                avg_us, static_cast<double>(s.retrain_nanos) / 1e6,
                static_cast<double>(total_ns) / 1e6);
  }
}

void PartC(const std::vector<Key>& base, const std::vector<Key>& inserts) {
  std::printf("\n(c) Buffer strategy: reserve vs retrain count and time\n");
  std::printf("%-10s %12s %16s %16s\n", "reserve", "retrains",
              "avg-retrain-us", "total-retrain-ms");
  for (size_t reserve : {128, 256, 512, 1024, 2048}) {
    auto policy = MakeUpdatePolicy("Buffer", reserve);
    policy->Load(base, 4096);
    for (Key k : inserts) policy->Insert(k);
    UpdatePolicyStats s = policy->Stats();
    double avg_us = s.retrain_count == 0
                        ? 0
                        : static_cast<double>(s.retrain_nanos) /
                              static_cast<double>(s.retrain_count) / 1e3;
    std::printf("%-10zu %12llu %16.2f %16.2f\n", reserve,
                static_cast<unsigned long long>(s.retrain_count), avg_us,
                static_cast<double>(s.retrain_nanos) / 1e6);
  }
}

void Run() {
  PrintHeader("Fig. 18: insertion & retraining strategies",
              "Inplace worst and larger reserve hurts it; ALEX-gap flat "
              "and fastest; ALEX retrains rarely/long, PGM often/cheap; "
              "total update time ALEX < PGM < FIT-buf < FIT-inp");
  const size_t n = BaseKeys();
  std::vector<Key> all = MakeUniformKeys(n + n / 3, 17);
  std::vector<Key> base;
  std::vector<Key> inserts;
  SplitLoadAndInserts(all, 4, &base, &inserts);
  PartA(base, inserts);
  PartBD(base, inserts);
  PartC(base, inserts);
}

}  // namespace
}  // namespace pieces::bench

int main() {
  pieces::bench::Run();
  return 0;
}
