#!/usr/bin/env python3
"""Convert pieces_bench JSONL output into per-experiment CSV files.

`pieces_bench --format=json --out=results/` writes one `<experiment>.jsonl`
per experiment (a meta line plus one line per result row). This tool
flattens those row lines into CSVs ready for pandas/gnuplot — the columns
are experiment,section,name,status plus the union of every label and
metric key in first-appearance order.

Note: `pieces_bench --format=csv` emits the same CSVs directly; this tool
exists for converting JSONL archives after the fact.

Usage:
    tools/parse_bench.py results/*.jsonl [--out-dir bench_csv]
    tools/parse_bench.py results/          # every .jsonl in the directory
"""
import csv
import json
import os
import sys


def convert(path: str, out_dir: str) -> int:
    """Converts one .jsonl file; returns the number of rows written."""
    rows = []
    label_keys, metric_keys = [], []
    experiment = os.path.splitext(os.path.basename(path))[0]
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{path}:{line_no}: bad JSON: {e}", file=sys.stderr)
                return -1
            if obj.get("type") == "experiment":
                experiment = obj.get("experiment", experiment)
            if obj.get("type") != "row":
                continue
            rows.append(obj)
            for key in obj.get("labels", {}):
                if key not in label_keys:
                    label_keys.append(key)
            for key in obj.get("metrics", {}):
                if key not in metric_keys:
                    metric_keys.append(key)

    if not rows:
        print(f"{path}: no row lines, skipped", file=sys.stderr)
        return 0

    out_path = os.path.join(out_dir, f"{experiment}.csv")
    fields = ["experiment", "section", "name", "status"]
    fields += label_keys + metric_keys
    with open(out_path, "w", newline="", encoding="utf-8") as f:
        writer = csv.DictWriter(f, fieldnames=fields)
        writer.writeheader()
        for obj in rows:
            record = {
                "experiment": obj.get("experiment", experiment),
                "section": obj.get("section", ""),
                "name": obj.get("name", ""),
                "status": obj.get("status", ""),
            }
            record.update(obj.get("labels", {}))
            record.update(obj.get("metrics", {}))
            writer.writerow(record)
    print(f"wrote {out_path} ({len(rows)} rows)")
    return len(rows)


def main() -> int:
    args = sys.argv[1:]
    out_dir = "bench_csv"
    if "--out-dir" in args:
        i = args.index("--out-dir")
        if i + 1 >= len(args):
            print(__doc__)
            return 1
        out_dir = args[i + 1]
        del args[i:i + 2]
    if not args:
        print(__doc__)
        return 1

    paths = []
    for arg in args:
        if os.path.isdir(arg):
            paths += sorted(
                os.path.join(arg, f)
                for f in os.listdir(arg)
                if f.endswith(".jsonl")
            )
        else:
            paths.append(arg)
    if not paths:
        print("no .jsonl inputs found", file=sys.stderr)
        return 1

    os.makedirs(out_dir, exist_ok=True)
    ok = True
    for path in paths:
        ok = convert(path, out_dir) >= 0 and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
