#!/usr/bin/env python3
"""Parse bench_output.txt into per-experiment CSV files.

The bench binaries print human-readable tables; this tool turns a full
sweep (`for b in build/bench/*; do $b; done | tee bench_output.txt`) into
machine-readable CSVs under out_dir (default: bench_csv/), one file per
experiment section, ready for pandas/gnuplot.

Usage:
    tools/parse_bench.py bench_output.txt [out_dir]
"""
import csv
import os
import re
import sys


SECTION_RE = re.compile(r"^=== (.+) ===$")
SUBSECTION_RE = re.compile(r"^-- (.+) --$")
# "NAME   1.234 Mops/s   p50   543 ns   p99.9   7423 ns"
THROUGHPUT_RE = re.compile(
    r"^(\S[\S ]*?)\s+([\d.]+)\s+Mops/s\s+p50\s+(\d+)\s+ns\s+p99\.9\s+(\d+)\s+ns"
)
# "NAME   123.4 Kscans/s   p50  543 ns"
SCAN_RE = re.compile(r"^(\S[\S ]*?)\s+([\d.]+)\s+Kscans/s\s+p50\s+(\d+)\s+ns")
# "NAME   12.3 ms" or fig16's two-column "NAME  build  recover"
MS_RE = re.compile(r"^(\S[\S ]*?)\s+([\d.]+)\s+ms$")
TWO_MS_RE = re.compile(r"^(\S[\S ]*?)\s+([\d.]+)\s+([\d.]+)$")


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug[:60]


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    path = sys.argv[1]
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    os.makedirs(out_dir, exist_ok=True)

    section = None
    subsection = ""
    rows = {}  # slug -> list of row dicts
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            m = SECTION_RE.match(line)
            if m:
                section = slugify(m.group(1))
                subsection = ""
                continue
            m = SUBSECTION_RE.match(line)
            if m:
                subsection = m.group(1)
                continue
            if section is None:
                continue
            m = THROUGHPUT_RE.match(line)
            if m:
                rows.setdefault(section, []).append({
                    "config": subsection,
                    "index": m.group(1).strip(),
                    "mops": float(m.group(2)),
                    "p50_ns": int(m.group(3)),
                    "p999_ns": int(m.group(4)),
                })
                continue
            m = SCAN_RE.match(line)
            if m:
                rows.setdefault(section, []).append({
                    "config": subsection,
                    "index": m.group(1).strip(),
                    "kscans": float(m.group(2)),
                    "p50_ns": int(m.group(3)),
                })
                continue
            m = MS_RE.match(line)
            if m:
                rows.setdefault(section, []).append({
                    "config": subsection,
                    "index": m.group(1).strip(),
                    "ms": float(m.group(2)),
                })

    for slug, data in rows.items():
        out_path = os.path.join(out_dir, f"{slug}.csv")
        fields = []
        for row in data:
            for key in row:
                if key not in fields:
                    fields.append(key)
        with open(out_path, "w", newline="", encoding="utf-8") as f:
            writer = csv.DictWriter(f, fieldnames=fields)
            writer.writeheader()
            writer.writerows(data)
        print(f"wrote {out_path} ({len(data)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
