#!/usr/bin/env python3
"""Compare two pieces_bench result trees and flag throughput regressions.

Both --baseline and --current are directories containing `<experiment>.jsonl`
files as written by `pieces_bench --format=json --out=DIR` (possibly nested,
e.g. results/drift/drift.jsonl — the tree is walked recursively) and/or
`BENCH_<experiment>.json` baseline files as written by
`tools/bench_baseline.py` (the committed per-PR perf history at the repo
root). Rows are matched across the two trees by (experiment, section,
name, labels); for each matched pair, every throughput-like metric is
compared and a drop larger than --threshold (default 15%) is flagged.

Throughput metrics are those where higher is better: qps / ops-per-second
style counters. p99 metrics also gate: an increase beyond
--latency-threshold (default 25%) is flagged as a regression — p99 at
smoke scale is noisy, hence the wider margin, but a tail that blows past
it is a real stall, not noise (set --latency-threshold 0 to disable).
Other latency metrics (p50, p999, raw ns) are reported informationally
when --show-latency is given but never affect the exit code.

Exit codes: 0 = no regression, 1 = at least one flagged regression,
2 = usage or parse error.

Usage:
    tools/compare_bench.py --baseline old_results/ --current results/
    tools/compare_bench.py --baseline a/ --current b/ --threshold 0.10
"""
import argparse
import json
import os
import sys

# A metric counts as throughput when its key contains one of these
# substrings (case-insensitive). Covers qps/achieved_qps/offered_qps from
# the service experiments and mops/ops_per_sec from the index microbenches.
THROUGHPUT_MARKERS = ("qps", "ops_per_sec", "mops", "throughput")
# ...unless it also matches one of these (offered_qps is the load we asked
# for, not what the system delivered — comparing it is meaningless).
THROUGHPUT_EXCLUDE = ("offered", "target")

LATENCY_MARKERS = ("ns", "p50", "p99", "p999", "latency")


def is_throughput(key: str) -> bool:
    low = key.lower()
    if any(marker in low for marker in THROUGHPUT_EXCLUDE):
        return False
    return any(marker in low for marker in THROUGHPUT_MARKERS)


def is_latency(key: str) -> bool:
    low = key.lower()
    return any(marker in low for marker in LATENCY_MARKERS)


def is_gating_latency(key: str) -> bool:
    """p99 gates; p999 (too noisy at smoke scale) and p50 do not."""
    low = key.lower()
    return "p99" in low and "p999" not in low


def add_row(rows, path, line_no, experiment, obj):
    """Records one row dict under its (experiment, section, name, labels)
    identity; duplicates keep the later occurrence, with a note."""
    labels = tuple(sorted(obj.get("labels", {}).items()))
    key = (experiment, obj.get("section", ""), obj.get("name", ""), labels)
    if key in rows:
        print(f"{path}:{line_no}: duplicate row identity {key[:3]}, "
              f"keeping the later one", file=sys.stderr)
    rows[key] = obj.get("metrics", {})


def load_baseline_file(rows, path):
    """Loads one BENCH_<experiment>.json file (bench_baseline.py output).
    Returns False on parse error."""
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            print(f"{path}: bad JSON: {e}", file=sys.stderr)
            return False
    if doc.get("type") != "bench_baseline":
        print(f"{path}: not a bench_baseline document, skipping",
              file=sys.stderr)
        return True
    experiment = doc.get("experiment", "")
    baseline_rows = doc.get("rows", [])
    if not baseline_rows:
        # A zero-row baseline gates nothing: every current row would count
        # as "new" and the comparison silently passes. That only happens
        # when bench_baseline.py was fed an empty/failed run — refuse it.
        print(f"{path}: baseline has zero rows (experiment "
              f"{experiment!r}); regenerate it from a successful run with "
              f"tools/bench_baseline.py", file=sys.stderr)
        return False
    for i, row in enumerate(baseline_rows, 1):
        add_row(rows, path, i, experiment, row)
    return True


def load_rows(root: str):
    """Walks `root` for .jsonl result files and BENCH_*.json baselines;
    returns {row_key: metrics dict}."""
    rows = {}
    for dirpath, _, filenames in os.walk(root):
        for filename in sorted(filenames):
            path = os.path.join(dirpath, filename)
            if filename.startswith("BENCH_") and filename.endswith(".json"):
                if not load_baseline_file(rows, path):
                    return None
                continue
            if not filename.endswith(".jsonl"):
                continue
            with open(path, encoding="utf-8") as f:
                for line_no, line in enumerate(f, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError as e:
                        print(f"{path}:{line_no}: bad JSON: {e}",
                              file=sys.stderr)
                        return None
                    if obj.get("type") != "row":
                        continue
                    add_row(rows, path, line_no, obj.get("experiment", ""),
                            obj)
    return rows


def describe(key) -> str:
    experiment, section, name, labels = key
    parts = [experiment]
    if section:
        parts.append(section)
    parts.append(name)
    parts += [f"{k}={v}" for k, v in labels]
    return " / ".join(parts)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="directory of baseline .jsonl results")
    ap.add_argument("--current", required=True,
                    help="directory of current .jsonl results")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="fractional throughput drop that counts as a "
                         "regression (default 0.15 = 15%%)")
    ap.add_argument("--latency-threshold", type=float, default=0.25,
                    help="fractional p99 increase that counts as a "
                         "regression (default 0.25 = 25%%; 0 disables "
                         "the latency gate)")
    ap.add_argument("--show-latency", action="store_true",
                    help="also print latency deltas (informational only)")
    ap.add_argument("--github-annotations", action="store_true",
                    help="emit ::warning:: lines for GitHub Actions")
    args = ap.parse_args()

    for root in (args.baseline, args.current):
        if not os.path.isdir(root):
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2
    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    if baseline is None or current is None:
        return 2
    if not baseline:
        print(f"error: no result rows under {args.baseline}",
              file=sys.stderr)
        return 2

    matched = 0
    compared = 0
    regressions = []
    for key, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(key)
        if cur_metrics is None:
            continue
        matched += 1
        for metric, base_val in base_metrics.items():
            cur_val = cur_metrics.get(metric)
            if cur_val is None or base_val is None:
                continue
            if is_throughput(metric):
                if base_val <= 0:
                    continue
                compared += 1
                delta = (cur_val - base_val) / base_val
                if delta < -args.threshold:
                    regressions.append((key, metric, base_val, cur_val,
                                        delta))
            elif (args.latency_threshold > 0 and is_gating_latency(metric)
                  and base_val > 0):
                compared += 1
                delta = (cur_val - base_val) / base_val
                if delta > args.latency_threshold:
                    regressions.append((key, metric, base_val, cur_val,
                                        delta))
            elif args.show_latency and is_latency(metric) and base_val > 0:
                delta = (cur_val - base_val) / base_val
                if abs(delta) > args.threshold:
                    print(f"  [latency] {describe(key)} {metric}: "
                          f"{base_val:.0f} -> {cur_val:.0f} "
                          f"({delta:+.1%})")

    unmatched = len(baseline) - matched
    print(f"compared {compared} gated metrics (throughput + p99) across "
          f"{matched} matched rows ({unmatched} baseline rows had no "
          f"counterpart; throughput threshold {args.threshold:.0%}, p99 "
          f"threshold {args.latency_threshold:.0%})")
    if not regressions:
        print("no regressions flagged")
        return 0
    for key, metric, base_val, cur_val, delta in regressions:
        kind = "p99" if is_gating_latency(metric) else "throughput"
        line = (f"{describe(key)} {metric}: {base_val:.1f} -> "
                f"{cur_val:.1f} ({delta:+.1%}, {kind})")
        print(f"  REGRESSION {line}")
        if args.github_annotations:
            print(f"::warning title=bench regression::{line}")
    print(f"{len(regressions)} regression(s) flagged")
    return 1


if __name__ == "__main__":
    sys.exit(main())
