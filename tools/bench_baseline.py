#!/usr/bin/env python3
"""Distill a pieces_bench result tree into committed BENCH_*.json baselines.

Walks --results for `<experiment>.jsonl` files (as written by
`pieces_bench --format=json --out=DIR`, possibly nested) and writes one
`BENCH_<experiment>.json` per experiment into --out (default: the repo
root, next to this script's parent directory). Each baseline file is a
single JSON document:

    {
      "type": "bench_baseline",
      "experiment": "disk_tier",
      "schema": 1,
      "rows": [
        {"section": "...", "name": "...", "labels": {...},
         "metrics": {...}},
        ...
      ]
    }

Rows are sorted by (section, name, labels) and keys within each object
are sorted, so regenerating from an equivalent run produces a stable
diff. `tools/compare_bench.py` reads these files directly (point
--baseline at a directory of BENCH_*.json), which is how bench-smoke CI
gates a PR against the committed perf history rather than only against
the runner cache.

Exit codes: 0 = baselines written, 2 = usage or parse error.

Usage:
    tools/bench_baseline.py --results results/            # write to repo root
    tools/bench_baseline.py --results results/ --out dir/
"""
import argparse
import json
import os
import sys


def load_rows_by_experiment(root: str):
    """Returns {experiment: [row dict, ...]} from all .jsonl under root."""
    by_exp = {}
    for dirpath, _, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".jsonl"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as f:
                for line_no, line in enumerate(f, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError as e:
                        print(f"{path}:{line_no}: bad JSON: {e}",
                              file=sys.stderr)
                        return None
                    if obj.get("type") != "row":
                        continue
                    exp = obj.get("experiment", "")
                    if not exp:
                        continue
                    row = {
                        "section": obj.get("section", ""),
                        "name": obj.get("name", ""),
                        "labels": obj.get("labels", {}),
                        "metrics": obj.get("metrics", {}),
                    }
                    status = obj.get("status", "")
                    if status and status != "ok":
                        row["status"] = status
                    by_exp.setdefault(exp, []).append(row)
    return by_exp


def row_sort_key(row):
    return (row["section"], row["name"],
            tuple(sorted(row["labels"].items())))


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results", required=True,
                    help="directory of .jsonl results to distill")
    ap.add_argument("--out", default=repo_root,
                    help="directory to write BENCH_<experiment>.json files "
                         "into (default: repo root)")
    args = ap.parse_args()

    if not os.path.isdir(args.results):
        print(f"error: {args.results} is not a directory", file=sys.stderr)
        return 2
    by_exp = load_rows_by_experiment(args.results)
    if by_exp is None:
        return 2
    if not by_exp:
        print(f"error: no result rows under {args.results}", file=sys.stderr)
        return 2

    os.makedirs(args.out, exist_ok=True)
    for exp in sorted(by_exp):
        rows = sorted(by_exp[exp], key=row_sort_key)
        # Duplicate identities (same section/name/labels) within one run
        # would be ambiguous in compare; keep the last, as compare does.
        deduped, seen = [], {}
        for row in rows:
            key = row_sort_key(row)
            if key in seen:
                deduped[seen[key]] = row
            else:
                seen[key] = len(deduped)
                deduped.append(row)
        doc = {
            "type": "bench_baseline",
            "experiment": exp,
            "schema": 1,
            "rows": deduped,
        }
        path = os.path.join(args.out, f"BENCH_{exp}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {path} ({len(deduped)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
