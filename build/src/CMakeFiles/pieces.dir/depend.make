# Empty dependencies file for pieces.
# This may be replaced when dependencies are built.
