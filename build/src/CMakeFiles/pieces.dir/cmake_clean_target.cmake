file(REMOVE_RECURSE
  "libpieces.a"
)
