
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anatomy/inner_structures.cc" "src/CMakeFiles/pieces.dir/anatomy/inner_structures.cc.o" "gcc" "src/CMakeFiles/pieces.dir/anatomy/inner_structures.cc.o.d"
  "/root/repo/src/anatomy/update_policies.cc" "src/CMakeFiles/pieces.dir/anatomy/update_policies.cc.o" "gcc" "src/CMakeFiles/pieces.dir/anatomy/update_policies.cc.o.d"
  "/root/repo/src/common/latency_recorder.cc" "src/CMakeFiles/pieces.dir/common/latency_recorder.cc.o" "gcc" "src/CMakeFiles/pieces.dir/common/latency_recorder.cc.o.d"
  "/root/repo/src/index/registry.cc" "src/CMakeFiles/pieces.dir/index/registry.cc.o" "gcc" "src/CMakeFiles/pieces.dir/index/registry.cc.o.d"
  "/root/repo/src/learned/alex.cc" "src/CMakeFiles/pieces.dir/learned/alex.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/alex.cc.o.d"
  "/root/repo/src/learned/fiting_tree.cc" "src/CMakeFiles/pieces.dir/learned/fiting_tree.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/fiting_tree.cc.o.d"
  "/root/repo/src/learned/lipp.cc" "src/CMakeFiles/pieces.dir/learned/lipp.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/lipp.cc.o.d"
  "/root/repo/src/learned/pgm.cc" "src/CMakeFiles/pieces.dir/learned/pgm.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/pgm.cc.o.d"
  "/root/repo/src/learned/radix_spline.cc" "src/CMakeFiles/pieces.dir/learned/radix_spline.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/radix_spline.cc.o.d"
  "/root/repo/src/learned/rmi.cc" "src/CMakeFiles/pieces.dir/learned/rmi.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/rmi.cc.o.d"
  "/root/repo/src/learned/xindex.cc" "src/CMakeFiles/pieces.dir/learned/xindex.cc.o" "gcc" "src/CMakeFiles/pieces.dir/learned/xindex.cc.o.d"
  "/root/repo/src/pla/greedy_pla.cc" "src/CMakeFiles/pieces.dir/pla/greedy_pla.cc.o" "gcc" "src/CMakeFiles/pieces.dir/pla/greedy_pla.cc.o.d"
  "/root/repo/src/pla/lsa.cc" "src/CMakeFiles/pieces.dir/pla/lsa.cc.o" "gcc" "src/CMakeFiles/pieces.dir/pla/lsa.cc.o.d"
  "/root/repo/src/pla/optimal_pla.cc" "src/CMakeFiles/pieces.dir/pla/optimal_pla.cc.o" "gcc" "src/CMakeFiles/pieces.dir/pla/optimal_pla.cc.o.d"
  "/root/repo/src/pla/segment.cc" "src/CMakeFiles/pieces.dir/pla/segment.cc.o" "gcc" "src/CMakeFiles/pieces.dir/pla/segment.cc.o.d"
  "/root/repo/src/pla/spline.cc" "src/CMakeFiles/pieces.dir/pla/spline.cc.o" "gcc" "src/CMakeFiles/pieces.dir/pla/spline.cc.o.d"
  "/root/repo/src/store/sim_pmem.cc" "src/CMakeFiles/pieces.dir/store/sim_pmem.cc.o" "gcc" "src/CMakeFiles/pieces.dir/store/sim_pmem.cc.o.d"
  "/root/repo/src/store/viper.cc" "src/CMakeFiles/pieces.dir/store/viper.cc.o" "gcc" "src/CMakeFiles/pieces.dir/store/viper.cc.o.d"
  "/root/repo/src/traditional/art.cc" "src/CMakeFiles/pieces.dir/traditional/art.cc.o" "gcc" "src/CMakeFiles/pieces.dir/traditional/art.cc.o.d"
  "/root/repo/src/traditional/btree.cc" "src/CMakeFiles/pieces.dir/traditional/btree.cc.o" "gcc" "src/CMakeFiles/pieces.dir/traditional/btree.cc.o.d"
  "/root/repo/src/traditional/extendible_hash.cc" "src/CMakeFiles/pieces.dir/traditional/extendible_hash.cc.o" "gcc" "src/CMakeFiles/pieces.dir/traditional/extendible_hash.cc.o.d"
  "/root/repo/src/traditional/olc_btree.cc" "src/CMakeFiles/pieces.dir/traditional/olc_btree.cc.o" "gcc" "src/CMakeFiles/pieces.dir/traditional/olc_btree.cc.o.d"
  "/root/repo/src/traditional/skiplist.cc" "src/CMakeFiles/pieces.dir/traditional/skiplist.cc.o" "gcc" "src/CMakeFiles/pieces.dir/traditional/skiplist.cc.o.d"
  "/root/repo/src/traditional/wormhole.cc" "src/CMakeFiles/pieces.dir/traditional/wormhole.cc.o" "gcc" "src/CMakeFiles/pieces.dir/traditional/wormhole.cc.o.d"
  "/root/repo/src/workload/cdf_stats.cc" "src/CMakeFiles/pieces.dir/workload/cdf_stats.cc.o" "gcc" "src/CMakeFiles/pieces.dir/workload/cdf_stats.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/pieces.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/pieces.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/pieces.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/pieces.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
