file(REMOVE_RECURSE
  "CMakeFiles/wormhole_test.dir/wormhole_test.cc.o"
  "CMakeFiles/wormhole_test.dir/wormhole_test.cc.o.d"
  "wormhole_test"
  "wormhole_test.pdb"
  "wormhole_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
