# Empty compiler generated dependencies file for wormhole_test.
# This may be replaced when dependencies are built.
