# Empty dependencies file for cdf_stats_test.
# This may be replaced when dependencies are built.
