file(REMOVE_RECURSE
  "CMakeFiles/cdf_stats_test.dir/cdf_stats_test.cc.o"
  "CMakeFiles/cdf_stats_test.dir/cdf_stats_test.cc.o.d"
  "cdf_stats_test"
  "cdf_stats_test.pdb"
  "cdf_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdf_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
