# Empty dependencies file for xindex_test.
# This may be replaced when dependencies are built.
