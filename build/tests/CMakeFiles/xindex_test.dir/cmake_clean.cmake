file(REMOVE_RECURSE
  "CMakeFiles/xindex_test.dir/xindex_test.cc.o"
  "CMakeFiles/xindex_test.dir/xindex_test.cc.o.d"
  "xindex_test"
  "xindex_test.pdb"
  "xindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
