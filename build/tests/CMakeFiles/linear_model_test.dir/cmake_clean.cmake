file(REMOVE_RECURSE
  "CMakeFiles/linear_model_test.dir/linear_model_test.cc.o"
  "CMakeFiles/linear_model_test.dir/linear_model_test.cc.o.d"
  "linear_model_test"
  "linear_model_test.pdb"
  "linear_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
