file(REMOVE_RECURSE
  "CMakeFiles/latency_recorder_test.dir/latency_recorder_test.cc.o"
  "CMakeFiles/latency_recorder_test.dir/latency_recorder_test.cc.o.d"
  "latency_recorder_test"
  "latency_recorder_test.pdb"
  "latency_recorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
