# Empty compiler generated dependencies file for latency_recorder_test.
# This may be replaced when dependencies are built.
