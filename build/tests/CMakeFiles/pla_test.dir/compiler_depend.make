# Empty compiler generated dependencies file for pla_test.
# This may be replaced when dependencies are built.
