file(REMOVE_RECURSE
  "CMakeFiles/pla_test.dir/pla_test.cc.o"
  "CMakeFiles/pla_test.dir/pla_test.cc.o.d"
  "pla_test"
  "pla_test.pdb"
  "pla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
