file(REMOVE_RECURSE
  "CMakeFiles/pgm_test.dir/pgm_test.cc.o"
  "CMakeFiles/pgm_test.dir/pgm_test.cc.o.d"
  "pgm_test"
  "pgm_test.pdb"
  "pgm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
