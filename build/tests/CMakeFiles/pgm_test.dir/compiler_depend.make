# Empty compiler generated dependencies file for pgm_test.
# This may be replaced when dependencies are built.
