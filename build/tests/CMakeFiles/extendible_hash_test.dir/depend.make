# Empty dependencies file for extendible_hash_test.
# This may be replaced when dependencies are built.
