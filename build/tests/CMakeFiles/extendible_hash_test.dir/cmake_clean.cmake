file(REMOVE_RECURSE
  "CMakeFiles/extendible_hash_test.dir/extendible_hash_test.cc.o"
  "CMakeFiles/extendible_hash_test.dir/extendible_hash_test.cc.o.d"
  "extendible_hash_test"
  "extendible_hash_test.pdb"
  "extendible_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extendible_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
