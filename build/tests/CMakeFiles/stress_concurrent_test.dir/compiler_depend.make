# Empty compiler generated dependencies file for stress_concurrent_test.
# This may be replaced when dependencies are built.
