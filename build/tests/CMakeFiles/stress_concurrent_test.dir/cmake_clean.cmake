file(REMOVE_RECURSE
  "CMakeFiles/stress_concurrent_test.dir/stress_concurrent_test.cc.o"
  "CMakeFiles/stress_concurrent_test.dir/stress_concurrent_test.cc.o.d"
  "stress_concurrent_test"
  "stress_concurrent_test.pdb"
  "stress_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
