file(REMOVE_RECURSE
  "CMakeFiles/olc_btree_test.dir/olc_btree_test.cc.o"
  "CMakeFiles/olc_btree_test.dir/olc_btree_test.cc.o.d"
  "olc_btree_test"
  "olc_btree_test.pdb"
  "olc_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olc_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
