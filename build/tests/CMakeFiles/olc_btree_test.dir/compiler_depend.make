# Empty compiler generated dependencies file for olc_btree_test.
# This may be replaced when dependencies are built.
