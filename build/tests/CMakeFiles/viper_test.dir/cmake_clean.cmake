file(REMOVE_RECURSE
  "CMakeFiles/viper_test.dir/viper_test.cc.o"
  "CMakeFiles/viper_test.dir/viper_test.cc.o.d"
  "viper_test"
  "viper_test.pdb"
  "viper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
