# Empty dependencies file for viper_test.
# This may be replaced when dependencies are built.
