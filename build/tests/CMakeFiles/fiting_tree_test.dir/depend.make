# Empty dependencies file for fiting_tree_test.
# This may be replaced when dependencies are built.
