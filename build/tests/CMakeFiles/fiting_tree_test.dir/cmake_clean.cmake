file(REMOVE_RECURSE
  "CMakeFiles/fiting_tree_test.dir/fiting_tree_test.cc.o"
  "CMakeFiles/fiting_tree_test.dir/fiting_tree_test.cc.o.d"
  "fiting_tree_test"
  "fiting_tree_test.pdb"
  "fiting_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiting_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
