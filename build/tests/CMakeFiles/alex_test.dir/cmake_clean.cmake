file(REMOVE_RECURSE
  "CMakeFiles/alex_test.dir/alex_test.cc.o"
  "CMakeFiles/alex_test.dir/alex_test.cc.o.d"
  "alex_test"
  "alex_test.pdb"
  "alex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
