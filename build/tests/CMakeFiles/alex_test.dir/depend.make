# Empty dependencies file for alex_test.
# This may be replaced when dependencies are built.
