# Empty dependencies file for store_fault_test.
# This may be replaced when dependencies are built.
