file(REMOVE_RECURSE
  "CMakeFiles/store_fault_test.dir/store_fault_test.cc.o"
  "CMakeFiles/store_fault_test.dir/store_fault_test.cc.o.d"
  "store_fault_test"
  "store_fault_test.pdb"
  "store_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
