# Empty dependencies file for lipp_test.
# This may be replaced when dependencies are built.
