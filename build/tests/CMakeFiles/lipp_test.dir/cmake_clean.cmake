file(REMOVE_RECURSE
  "CMakeFiles/lipp_test.dir/lipp_test.cc.o"
  "CMakeFiles/lipp_test.dir/lipp_test.cc.o.d"
  "lipp_test"
  "lipp_test.pdb"
  "lipp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
