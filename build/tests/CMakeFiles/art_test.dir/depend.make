# Empty dependencies file for art_test.
# This may be replaced when dependencies are built.
