file(REMOVE_RECURSE
  "CMakeFiles/art_test.dir/art_test.cc.o"
  "CMakeFiles/art_test.dir/art_test.cc.o.d"
  "art_test"
  "art_test.pdb"
  "art_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/art_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
