file(REMOVE_RECURSE
  "CMakeFiles/readonly_index_test.dir/readonly_index_test.cc.o"
  "CMakeFiles/readonly_index_test.dir/readonly_index_test.cc.o.d"
  "readonly_index_test"
  "readonly_index_test.pdb"
  "readonly_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readonly_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
