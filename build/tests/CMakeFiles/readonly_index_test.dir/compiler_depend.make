# Empty compiler generated dependencies file for readonly_index_test.
# This may be replaced when dependencies are built.
