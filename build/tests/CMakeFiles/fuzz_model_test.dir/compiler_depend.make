# Empty compiler generated dependencies file for fuzz_model_test.
# This may be replaced when dependencies are built.
