file(REMOVE_RECURSE
  "CMakeFiles/fuzz_model_test.dir/fuzz_model_test.cc.o"
  "CMakeFiles/fuzz_model_test.dir/fuzz_model_test.cc.o.d"
  "fuzz_model_test"
  "fuzz_model_test.pdb"
  "fuzz_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
