file(REMOVE_RECURSE
  "CMakeFiles/anatomy_test.dir/anatomy_test.cc.o"
  "CMakeFiles/anatomy_test.dir/anatomy_test.cc.o.d"
  "anatomy_test"
  "anatomy_test.pdb"
  "anatomy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
