# Empty dependencies file for anatomy_test.
# This may be replaced when dependencies are built.
