# Empty dependencies file for index_conformance_test.
# This may be replaced when dependencies are built.
