file(REMOVE_RECURSE
  "CMakeFiles/index_conformance_test.dir/index_conformance_test.cc.o"
  "CMakeFiles/index_conformance_test.dir/index_conformance_test.cc.o.d"
  "index_conformance_test"
  "index_conformance_test.pdb"
  "index_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
