# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/linear_model_test[1]_include.cmake")
include("/root/repo/build/tests/latency_recorder_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/pla_test[1]_include.cmake")
include("/root/repo/build/tests/index_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/alex_test[1]_include.cmake")
include("/root/repo/build/tests/pgm_test[1]_include.cmake")
include("/root/repo/build/tests/fiting_tree_test[1]_include.cmake")
include("/root/repo/build/tests/xindex_test[1]_include.cmake")
include("/root/repo/build/tests/lipp_test[1]_include.cmake")
include("/root/repo/build/tests/readonly_index_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/viper_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/anatomy_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_model_test[1]_include.cmake")
include("/root/repo/build/tests/store_fault_test[1]_include.cmake")
include("/root/repo/build/tests/cdf_stats_test[1]_include.cmake")
include("/root/repo/build/tests/stress_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/art_test[1]_include.cmake")
include("/root/repo/build/tests/olc_btree_test[1]_include.cmake")
include("/root/repo/build/tests/extendible_hash_test[1]_include.cmake")
include("/root/repo/build/tests/wormhole_test[1]_include.cmake")
