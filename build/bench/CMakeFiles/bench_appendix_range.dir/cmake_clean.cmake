file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_range.dir/bench_appendix_range.cc.o"
  "CMakeFiles/bench_appendix_range.dir/bench_appendix_range.cc.o.d"
  "bench_appendix_range"
  "bench_appendix_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
