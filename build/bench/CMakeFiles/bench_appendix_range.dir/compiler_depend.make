# Empty compiler generated dependencies file for bench_appendix_range.
# This may be replaced when dependencies are built.
