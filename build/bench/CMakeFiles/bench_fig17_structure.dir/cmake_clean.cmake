file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_structure.dir/bench_fig17_structure.cc.o"
  "CMakeFiles/bench_fig17_structure.dir/bench_fig17_structure.cc.o.d"
  "bench_fig17_structure"
  "bench_fig17_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
