# Empty dependencies file for bench_fig17_structure.
# This may be replaced when dependencies are built.
