file(REMOVE_RECURSE
  "CMakeFiles/bench_tuning.dir/bench_tuning.cc.o"
  "CMakeFiles/bench_tuning.dir/bench_tuning.cc.o.d"
  "bench_tuning"
  "bench_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
