# Empty dependencies file for bench_tuning.
# This may be replaced when dependencies are built.
