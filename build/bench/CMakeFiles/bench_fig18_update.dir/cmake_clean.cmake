file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_update.dir/bench_fig18_update.cc.o"
  "CMakeFiles/bench_fig18_update.dir/bench_fig18_update.cc.o.d"
  "bench_fig18_update"
  "bench_fig18_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
