file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mt_write.dir/bench_fig14_mt_write.cc.o"
  "CMakeFiles/bench_fig14_mt_write.dir/bench_fig14_mt_write.cc.o.d"
  "bench_fig14_mt_write"
  "bench_fig14_mt_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mt_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
