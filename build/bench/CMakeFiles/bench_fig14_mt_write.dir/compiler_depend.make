# Empty compiler generated dependencies file for bench_fig14_mt_write.
# This may be replaced when dependencies are built.
