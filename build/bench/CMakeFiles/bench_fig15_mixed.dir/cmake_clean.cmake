file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_mixed.dir/bench_fig15_mixed.cc.o"
  "CMakeFiles/bench_fig15_mixed.dir/bench_fig15_mixed.cc.o.d"
  "bench_fig15_mixed"
  "bench_fig15_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
