file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_space.dir/bench_table3_space.cc.o"
  "CMakeFiles/bench_table3_space.dir/bench_table3_space.cc.o.d"
  "bench_table3_space"
  "bench_table3_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
