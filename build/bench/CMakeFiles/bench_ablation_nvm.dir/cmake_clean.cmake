file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nvm.dir/bench_ablation_nvm.cc.o"
  "CMakeFiles/bench_ablation_nvm.dir/bench_ablation_nvm.cc.o.d"
  "bench_ablation_nvm"
  "bench_ablation_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
