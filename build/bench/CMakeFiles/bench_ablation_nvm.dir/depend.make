# Empty dependencies file for bench_ablation_nvm.
# This may be replaced when dependencies are built.
