# Empty compiler generated dependencies file for bench_dataset_hardness.
# This may be replaced when dependencies are built.
