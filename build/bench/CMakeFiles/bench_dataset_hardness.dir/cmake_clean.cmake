file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_hardness.dir/bench_dataset_hardness.cc.o"
  "CMakeFiles/bench_dataset_hardness.dir/bench_dataset_hardness.cc.o.d"
  "bench_dataset_hardness"
  "bench_dataset_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
