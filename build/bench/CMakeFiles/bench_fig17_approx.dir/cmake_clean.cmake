file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_approx.dir/bench_fig17_approx.cc.o"
  "CMakeFiles/bench_fig17_approx.dir/bench_fig17_approx.cc.o.d"
  "bench_fig17_approx"
  "bench_fig17_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
