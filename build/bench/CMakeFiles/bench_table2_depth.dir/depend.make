# Empty dependencies file for bench_table2_depth.
# This may be replaced when dependencies are built.
