file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_depth.dir/bench_table2_depth.cc.o"
  "CMakeFiles/bench_table2_depth.dir/bench_table2_depth.cc.o.d"
  "bench_table2_depth"
  "bench_table2_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
