file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_face.dir/bench_fig11_face.cc.o"
  "CMakeFiles/bench_fig11_face.dir/bench_fig11_face.cc.o.d"
  "bench_fig11_face"
  "bench_fig11_face.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_face.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
