# Empty dependencies file for bench_fig11_face.
# This may be replaced when dependencies are built.
