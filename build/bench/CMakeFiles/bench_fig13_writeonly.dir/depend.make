# Empty dependencies file for bench_fig13_writeonly.
# This may be replaced when dependencies are built.
