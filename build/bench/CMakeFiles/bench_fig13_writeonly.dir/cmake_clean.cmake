file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_writeonly.dir/bench_fig13_writeonly.cc.o"
  "CMakeFiles/bench_fig13_writeonly.dir/bench_fig13_writeonly.cc.o.d"
  "bench_fig13_writeonly"
  "bench_fig13_writeonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_writeonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
