file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_search.dir/bench_ablation_search.cc.o"
  "CMakeFiles/bench_ablation_search.dir/bench_ablation_search.cc.o.d"
  "bench_ablation_search"
  "bench_ablation_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
