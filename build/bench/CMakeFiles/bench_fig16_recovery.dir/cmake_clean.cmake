file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_recovery.dir/bench_fig16_recovery.cc.o"
  "CMakeFiles/bench_fig16_recovery.dir/bench_fig16_recovery.cc.o.d"
  "bench_fig16_recovery"
  "bench_fig16_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
