file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_taxonomy.dir/bench_table1_taxonomy.cc.o"
  "CMakeFiles/bench_table1_taxonomy.dir/bench_table1_taxonomy.cc.o.d"
  "bench_table1_taxonomy"
  "bench_table1_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
