# Empty dependencies file for bench_table1_taxonomy.
# This may be replaced when dependencies are built.
