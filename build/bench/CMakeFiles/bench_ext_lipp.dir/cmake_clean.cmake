file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lipp.dir/bench_ext_lipp.cc.o"
  "CMakeFiles/bench_ext_lipp.dir/bench_ext_lipp.cc.o.d"
  "bench_ext_lipp"
  "bench_ext_lipp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lipp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
