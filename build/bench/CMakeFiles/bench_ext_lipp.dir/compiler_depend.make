# Empty compiler generated dependencies file for bench_ext_lipp.
# This may be replaced when dependencies are built.
