# Empty dependencies file for bench_fig12_mt_read.
# This may be replaced when dependencies are built.
