file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mt_read.dir/bench_fig12_mt_read.cc.o"
  "CMakeFiles/bench_fig12_mt_read.dir/bench_fig12_mt_read.cc.o.d"
  "bench_fig12_mt_read"
  "bench_fig12_mt_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mt_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
