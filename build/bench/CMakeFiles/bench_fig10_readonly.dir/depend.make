# Empty dependencies file for bench_fig10_readonly.
# This may be replaced when dependencies are built.
