file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_readonly.dir/bench_fig10_readonly.cc.o"
  "CMakeFiles/bench_fig10_readonly.dir/bench_fig10_readonly.cc.o.d"
  "bench_fig10_readonly"
  "bench_fig10_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
