# Empty dependencies file for range_scan_analytics.
# This may be replaced when dependencies are built.
