file(REMOVE_RECURSE
  "CMakeFiles/range_scan_analytics.dir/range_scan_analytics.cpp.o"
  "CMakeFiles/range_scan_analytics.dir/range_scan_analytics.cpp.o.d"
  "range_scan_analytics"
  "range_scan_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_scan_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
