file(REMOVE_RECURSE
  "CMakeFiles/viper_ycsb.dir/viper_ycsb.cpp.o"
  "CMakeFiles/viper_ycsb.dir/viper_ycsb.cpp.o.d"
  "viper_ycsb"
  "viper_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
