# Empty dependencies file for viper_ycsb.
# This may be replaced when dependencies are built.
