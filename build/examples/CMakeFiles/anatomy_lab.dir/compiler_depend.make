# Empty compiler generated dependencies file for anatomy_lab.
# This may be replaced when dependencies are built.
