file(REMOVE_RECURSE
  "CMakeFiles/anatomy_lab.dir/anatomy_lab.cpp.o"
  "CMakeFiles/anatomy_lab.dir/anatomy_lab.cpp.o.d"
  "anatomy_lab"
  "anatomy_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
